package layers

import (
	"fmt"
	"net/netip"
)

// FlowKey identifies a unidirectional transport flow. It is comparable and
// therefore usable directly as a map key, like gopacket's Flow.
type FlowKey struct {
	Proto            uint8
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// Canonical returns a direction-independent key (the lexicographically
// smaller endpoint first) and whether the key was flipped. Both directions
// of a connection canonicalize to the same value, the property connection
// tables rely on.
func (k FlowKey) Canonical() (FlowKey, bool) {
	if k.Src.Compare(k.Dst) > 0 || (k.Src == k.Dst && k.SrcPort > k.DstPort) {
		return k.Reverse(), true
	}
	return k, false
}

// String renders "proto src:sport > dst:dport".
func (k FlowKey) String() string {
	return fmt.Sprintf("%d %s:%d > %s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// HostPair is an unordered pair of network addresses; the paper counts
// operation success/failure by distinct host pair.
type HostPair struct {
	A, B netip.Addr
}

// NewHostPair returns the canonical (ordered) pair for two addresses.
func NewHostPair(x, y netip.Addr) HostPair {
	if x.Compare(y) > 0 {
		x, y = y, x
	}
	return HostPair{A: x, B: y}
}

// FlowKeyOf extracts the flow key from a decoded packet. ICMP packets use
// type/code-independent zero ports so an echo exchange aggregates into one
// flow. The second return is false for non-IP packets.
func FlowKeyOf(p *Packet) (FlowKey, bool) {
	src, ok := p.NetSrc()
	if !ok {
		return FlowKey{}, false
	}
	dst, _ := p.NetDst()
	proto, _ := p.IPProto()
	k := FlowKey{Proto: proto, Src: src, Dst: dst}
	if sp, dp, ok := p.Ports(); ok {
		k.SrcPort, k.DstPort = sp, dp
	}
	return k, true
}
