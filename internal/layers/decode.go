package layers

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Decode errors. Truncation below the snaplen is not an error — the packet
// is marked Truncated and decoding stops at the missing bytes — but a frame
// too short to even hold an Ethernet header is.
var (
	ErrShortFrame = errors.New("layers: frame shorter than Ethernet header")
)

var be = binary.BigEndian

// Decode parses an Ethernet frame into p, which is reset first. origLen is
// the wire length before any snaplen truncation (pass len(data) when the
// capture is complete). Unknown upper protocols are not an error: decoding
// stops with whatever was recognized and the rest as payload.
func Decode(data []byte, origLen int, p *Packet) error {
	p.Reset()
	if origLen < len(data) {
		origLen = len(data)
	}
	p.Truncated = origLen > len(data)
	if len(data) < 14 {
		return ErrShortFrame
	}
	copy(p.Eth.Dst[:], data[0:6])
	copy(p.Eth.Src[:], data[6:12])
	et := be.Uint16(data[12:14])
	p.Layers |= LayerEthernet
	rest := data[14:]
	if et >= 0x0600 {
		p.Eth.EtherType = et
		p.Eth.Length802 = 0
	} else {
		// 802.3: the field is a length. The only 802.3 traffic the traces
		// carry is "raw" Novell IPX, recognizable by the 0xFFFF checksum at
		// the head of the payload.
		p.Eth.EtherType = 0
		p.Eth.Length802 = et
		if len(rest) >= 2 && be.Uint16(rest[0:2]) == 0xFFFF {
			return decodeIPX(rest, p)
		}
		p.Payload = rest
		p.PayloadLen = len(rest) + (origLen - len(data))
		p.Layers |= LayerPayload
		return nil
	}
	switch et {
	case EtherTypeIPv4:
		return decodeIPv4(rest, origLen-14, p)
	case EtherTypeIPv6:
		return decodeIPv6(rest, origLen-14, p)
	case EtherTypeARP:
		return decodeARP(rest, p)
	case EtherTypeIPX:
		return decodeIPX(rest, p)
	default:
		p.Payload = rest
		p.PayloadLen = len(rest) + (origLen - len(data))
		p.Layers |= LayerPayload
		return nil
	}
}

func decodeARP(data []byte, p *Packet) error {
	if len(data) < 8 {
		p.Truncated = true
		return nil
	}
	p.ARP = ARP{Op: be.Uint16(data[6:8])}
	hlen, plen := int(data[4]), int(data[5])
	p.Layers |= LayerARP
	if hlen == 6 && plen == 4 && len(data) >= 8+2*(6+4) {
		copy(p.ARP.SenderHW[:], data[8:14])
		p.ARP.SenderIP = netip.AddrFrom4([4]byte(data[14:18]))
		copy(p.ARP.TargetHW[:], data[18:24])
		p.ARP.TargetIP = netip.AddrFrom4([4]byte(data[24:28]))
	}
	return nil
}

func decodeIPX(data []byte, p *Packet) error {
	if len(data) < 30 {
		p.Truncated = true
		return nil
	}
	p.IPX = IPX{
		Length:     be.Uint16(data[2:4]),
		Hops:       data[4],
		PacketType: data[5],
		DstNet:     be.Uint32(data[6:10]),
		DstSocket:  be.Uint16(data[16:18]),
		SrcNet:     be.Uint32(data[18:22]),
		SrcSocket:  be.Uint16(data[28:30]),
	}
	copy(p.IPX.DstNode[:], data[10:16])
	copy(p.IPX.SrcNode[:], data[22:28])
	p.Layers |= LayerIPX
	if len(data) > 30 {
		p.Payload = data[30:]
		p.PayloadLen = len(p.Payload)
		p.Layers |= LayerPayload
	}
	return nil
}

func decodeIPv4(data []byte, wireLen int, p *Packet) error {
	if len(data) < 20 {
		p.Truncated = true
		return nil
	}
	if data[0]>>4 != 4 {
		return fmt.Errorf("layers: IPv4 version field is %d", data[0]>>4)
	}
	ihl := data[0] & 0x0f
	hlen := int(ihl) * 4
	if hlen < 20 {
		return fmt.Errorf("layers: IPv4 IHL %d too small", ihl)
	}
	p.IP4 = IPv4{
		IHL:      ihl,
		TOS:      data[1],
		Length:   be.Uint16(data[2:4]),
		ID:       be.Uint16(data[4:6]),
		Flags:    data[6] >> 5,
		FragOff:  be.Uint16(data[6:8]) & 0x1fff,
		TTL:      data[8],
		Protocol: data[9],
		Checksum: be.Uint16(data[10:12]),
		Src:      netip.AddrFrom4([4]byte(data[12:16])),
		Dst:      netip.AddrFrom4([4]byte(data[16:20])),
	}
	p.Layers |= LayerIPv4
	if len(data) < hlen {
		p.Truncated = true
		return nil
	}
	// Bound the transport view by the IP total length when the frame has
	// Ethernet padding.
	totalLen := int(p.IP4.Length)
	body := data[hlen:]
	if totalLen >= hlen && totalLen-hlen < len(body) {
		body = body[:totalLen-hlen]
	}
	transportWire := totalLen - hlen
	if transportWire < len(body) {
		transportWire = len(body)
	}
	if p.IP4.Fragment() && p.IP4.FragOff != 0 {
		// Non-first fragment: no transport header to parse.
		p.Payload = body
		p.PayloadLen = transportWire
		p.Layers |= LayerPayload
		return nil
	}
	return decodeTransport(p.IP4.Protocol, body, transportWire, p)
}

func decodeIPv6(data []byte, wireLen int, p *Packet) error {
	if len(data) < 40 {
		p.Truncated = true
		return nil
	}
	if data[0]>>4 != 6 {
		return fmt.Errorf("layers: IPv6 version field is %d", data[0]>>4)
	}
	p.IP6 = IPv6{
		TrafficClass: data[0]<<4 | data[1]>>4,
		FlowLabel:    be.Uint32(data[0:4]) & 0xfffff,
		Length:       be.Uint16(data[4:6]),
		NextHeader:   data[6],
		HopLimit:     data[7],
		Src:          netip.AddrFrom16([16]byte(data[8:24])),
		Dst:          netip.AddrFrom16([16]byte(data[24:40])),
	}
	p.Layers |= LayerIPv6
	body := data[40:]
	if int(p.IP6.Length) < len(body) {
		body = body[:p.IP6.Length]
	}
	return decodeTransport(p.IP6.NextHeader, body, int(p.IP6.Length), p)
}

func decodeTransport(proto uint8, data []byte, wireLen int, p *Packet) error {
	if wireLen < len(data) {
		wireLen = len(data)
	}
	switch proto {
	case ProtoTCP:
		return decodeTCP(data, wireLen, p)
	case ProtoUDP:
		return decodeUDP(data, wireLen, p)
	case ProtoICMP:
		return decodeICMP(data, wireLen, p)
	default:
		p.Payload = data
		p.PayloadLen = wireLen
		if len(data) > 0 {
			p.Layers |= LayerPayload
		}
		return nil
	}
}

func decodeTCP(data []byte, wireLen int, p *Packet) error {
	if len(data) < 20 {
		p.Truncated = true
		return nil
	}
	off := data[12] >> 4
	hlen := int(off) * 4
	if hlen < 20 {
		return fmt.Errorf("layers: TCP data offset %d too small", off)
	}
	p.TCP = TCP{
		SrcPort:    be.Uint16(data[0:2]),
		DstPort:    be.Uint16(data[2:4]),
		Seq:        be.Uint32(data[4:8]),
		Ack:        be.Uint32(data[8:12]),
		DataOffset: off,
		Flags:      data[13] & 0x3f,
		Window:     be.Uint16(data[14:16]),
		Checksum:   be.Uint16(data[16:18]),
		Urgent:     be.Uint16(data[18:20]),
	}
	p.Layers |= LayerTCP
	p.PayloadLen = wireLen - hlen
	if p.PayloadLen < 0 {
		p.PayloadLen = 0
	}
	if len(data) < hlen {
		p.Truncated = true
		return nil
	}
	p.Payload = data[hlen:]
	if p.PayloadLen > 0 {
		p.Layers |= LayerPayload
	}
	return nil
}

func decodeUDP(data []byte, wireLen int, p *Packet) error {
	if len(data) < 8 {
		p.Truncated = true
		return nil
	}
	p.UDP = UDP{
		SrcPort:  be.Uint16(data[0:2]),
		DstPort:  be.Uint16(data[2:4]),
		Length:   be.Uint16(data[4:6]),
		Checksum: be.Uint16(data[6:8]),
	}
	p.Layers |= LayerUDP
	p.PayloadLen = int(p.UDP.Length) - 8
	if p.PayloadLen < 0 {
		p.PayloadLen = wireLen - 8
	}
	body := data[8:]
	if p.PayloadLen < len(body) {
		body = body[:p.PayloadLen]
	}
	p.Payload = body
	if p.PayloadLen > 0 {
		p.Layers |= LayerPayload
	}
	return nil
}

func decodeICMP(data []byte, wireLen int, p *Packet) error {
	if len(data) < 4 {
		p.Truncated = true
		return nil
	}
	p.ICMP = ICMP{Type: data[0], Code: data[1], Checksum: be.Uint16(data[2:4])}
	if len(data) >= 8 && (p.ICMP.Type == ICMPEchoRequest || p.ICMP.Type == ICMPEchoReply) {
		p.ICMP.ID = be.Uint16(data[4:6])
		p.ICMP.Seq = be.Uint16(data[6:8])
	}
	p.Layers |= LayerICMP
	if len(data) > 8 {
		p.Payload = data[8:]
	}
	p.PayloadLen = wireLen - 8
	if p.PayloadLen < 0 {
		p.PayloadLen = 0
	}
	return nil
}
