package layers

import "net/netip"

// internetChecksum computes the RFC 1071 one's-complement sum over data,
// seeded with sum (for pseudo-header folding).
func internetChecksum(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func foldChecksum(sum uint32) uint16 {
	for sum > 0xffff {
		sum = (sum >> 16) + (sum & 0xffff)
	}
	return ^uint16(sum)
}

func pseudoHeaderSum(src, dst netip.Addr, proto uint8, length int) uint32 {
	var sum uint32
	if src.Is4() {
		s, d := src.As4(), dst.As4()
		sum = internetChecksum(sum, s[:])
		sum = internetChecksum(sum, d[:])
	} else {
		s, d := src.As16(), dst.As16()
		sum = internetChecksum(sum, s[:])
		sum = internetChecksum(sum, d[:])
	}
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// FrameOpts carries the addressing shared by every frame builder.
type FrameOpts struct {
	SrcMAC, DstMAC MAC
	SrcIP, DstIP   netip.Addr
	TTL            uint8 // default 64
	IPID           uint16
	TOS            uint8
}

func (o *FrameOpts) ttl() uint8 {
	if o.TTL == 0 {
		return 64
	}
	return o.TTL
}

func putEthernet(buf []byte, src, dst MAC, etherType uint16) {
	copy(buf[0:6], dst[:])
	copy(buf[6:12], src[:])
	be.PutUint16(buf[12:14], etherType)
}

func buildIPv4(o *FrameOpts, proto uint8, transport []byte) []byte {
	totalLen := 20 + len(transport)
	frame := make([]byte, 14+totalLen)
	putEthernet(frame, o.SrcMAC, o.DstMAC, EtherTypeIPv4)
	ip := frame[14:]
	ip[0] = 0x45 // version 4, IHL 5
	ip[1] = o.TOS
	be.PutUint16(ip[2:4], uint16(totalLen))
	be.PutUint16(ip[4:6], o.IPID)
	ip[6] = 0x40 // DF
	ip[8] = o.ttl()
	ip[9] = proto
	src, dst := o.SrcIP.As4(), o.DstIP.As4()
	copy(ip[12:16], src[:])
	copy(ip[16:20], dst[:])
	be.PutUint16(ip[10:12], foldChecksum(internetChecksum(0, ip[:20])))
	copy(ip[20:], transport)
	return frame
}

// TCPOpts describes one TCP segment for BuildTCP.
type TCPOpts struct {
	FrameOpts
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	Payload          []byte
}

// BuildTCP serializes a full Ethernet/IPv4/TCP frame with valid checksums.
func BuildTCP(o TCPOpts) []byte {
	if o.Window == 0 {
		o.Window = 65535
	}
	seg := make([]byte, 20+len(o.Payload))
	be.PutUint16(seg[0:2], o.SrcPort)
	be.PutUint16(seg[2:4], o.DstPort)
	be.PutUint32(seg[4:8], o.Seq)
	be.PutUint32(seg[8:12], o.Ack)
	seg[12] = 5 << 4
	seg[13] = o.Flags
	be.PutUint16(seg[14:16], o.Window)
	copy(seg[20:], o.Payload)
	sum := pseudoHeaderSum(o.SrcIP, o.DstIP, ProtoTCP, len(seg))
	be.PutUint16(seg[16:18], foldChecksum(internetChecksum(sum, seg)))
	return buildIPv4(&o.FrameOpts, ProtoTCP, seg)
}

// UDPOpts describes one UDP datagram for BuildUDP.
type UDPOpts struct {
	FrameOpts
	SrcPort, DstPort uint16
	Payload          []byte
}

// BuildUDP serializes a full Ethernet/IPv4/UDP frame (or IPv6 when the
// addresses are v6) with valid checksums.
func BuildUDP(o UDPOpts) []byte {
	dg := make([]byte, 8+len(o.Payload))
	be.PutUint16(dg[0:2], o.SrcPort)
	be.PutUint16(dg[2:4], o.DstPort)
	be.PutUint16(dg[4:6], uint16(len(dg)))
	copy(dg[8:], o.Payload)
	sum := pseudoHeaderSum(o.SrcIP, o.DstIP, ProtoUDP, len(dg))
	be.PutUint16(dg[6:8], foldChecksum(internetChecksum(sum, dg)))
	if o.SrcIP.Is4() {
		return buildIPv4(&o.FrameOpts, ProtoUDP, dg)
	}
	return buildIPv6(&o.FrameOpts, ProtoUDP, dg)
}

func buildIPv6(o *FrameOpts, next uint8, transport []byte) []byte {
	frame := make([]byte, 14+40+len(transport))
	putEthernet(frame, o.SrcMAC, o.DstMAC, EtherTypeIPv6)
	ip := frame[14:]
	ip[0] = 6 << 4
	be.PutUint16(ip[4:6], uint16(len(transport)))
	ip[6] = next
	ip[7] = o.ttl()
	src, dst := o.SrcIP.As16(), o.DstIP.As16()
	copy(ip[8:24], src[:])
	copy(ip[24:40], dst[:])
	copy(ip[40:], transport)
	return frame
}

// ICMPOpts describes one ICMP message for BuildICMP.
type ICMPOpts struct {
	FrameOpts
	Type, Code uint8
	ID, Seq    uint16
	Payload    []byte
}

// BuildICMP serializes a full Ethernet/IPv4/ICMP frame.
func BuildICMP(o ICMPOpts) []byte {
	msg := make([]byte, 8+len(o.Payload))
	msg[0] = o.Type
	msg[1] = o.Code
	be.PutUint16(msg[4:6], o.ID)
	be.PutUint16(msg[6:8], o.Seq)
	copy(msg[8:], o.Payload)
	be.PutUint16(msg[2:4], foldChecksum(internetChecksum(0, msg)))
	return buildIPv4(&o.FrameOpts, ProtoICMP, msg)
}

// ARPOpts describes an ARP request or reply for BuildARP.
type ARPOpts struct {
	SrcMAC, DstMAC     MAC // Ethernet addressing (DstMAC usually Broadcast for requests)
	Op                 uint16
	SenderHW, TargetHW MAC
	SenderIP, TargetIP netip.Addr
}

// BuildARP serializes an Ethernet ARP frame (hardware Ethernet, protocol
// IPv4), padded to the 60-byte Ethernet minimum.
func BuildARP(o ARPOpts) []byte {
	frame := make([]byte, 60)
	putEthernet(frame, o.SrcMAC, o.DstMAC, EtherTypeARP)
	a := frame[14:]
	be.PutUint16(a[0:2], 1) // Ethernet
	be.PutUint16(a[2:4], uint16(EtherTypeIPv4))
	a[4], a[5] = 6, 4
	be.PutUint16(a[6:8], o.Op)
	copy(a[8:14], o.SenderHW[:])
	sip := o.SenderIP.As4()
	copy(a[14:18], sip[:])
	copy(a[18:24], o.TargetHW[:])
	tip := o.TargetIP.As4()
	copy(a[24:28], tip[:])
	return frame
}

// IPXOpts describes an IPX datagram for BuildIPX.
type IPXOpts struct {
	SrcMAC, DstMAC       MAC
	SrcNet, DstNet       uint32
	SrcSocket, DstSocket uint16
	PacketType           uint8
	Payload              []byte
	// Raw8023 selects the "raw" Novell encapsulation (802.3 length field,
	// 0xFFFF checksum) instead of EtherType 0x8137.
	Raw8023 bool
}

// BuildIPX serializes an IPX frame in either encapsulation.
func BuildIPX(o IPXOpts) []byte {
	ipxLen := 30 + len(o.Payload)
	frame := make([]byte, 14+ipxLen)
	copy(frame[0:6], o.DstMAC[:])
	copy(frame[6:12], o.SrcMAC[:])
	if o.Raw8023 {
		be.PutUint16(frame[12:14], uint16(ipxLen))
	} else {
		be.PutUint16(frame[12:14], EtherTypeIPX)
	}
	x := frame[14:]
	be.PutUint16(x[0:2], 0xFFFF) // checksum: none
	be.PutUint16(x[2:4], uint16(ipxLen))
	x[5] = o.PacketType
	be.PutUint32(x[6:10], o.DstNet)
	copy(x[10:16], o.DstMAC[:])
	be.PutUint16(x[16:18], o.DstSocket)
	be.PutUint32(x[18:22], o.SrcNet)
	copy(x[22:28], o.SrcMAC[:])
	be.PutUint16(x[28:30], o.SrcSocket)
	copy(x[30:], o.Payload)
	if len(frame) < 60 {
		padded := make([]byte, 60)
		copy(padded, frame)
		frame = padded
	}
	return frame
}

// MulticastMAC maps an IPv4 multicast group address to its Ethernet
// multicast MAC (01:00:5e + low 23 bits).
func MulticastMAC(group netip.Addr) MAC {
	g := group.As4()
	return MAC{0x01, 0x00, 0x5e, g[1] & 0x7f, g[2], g[3]}
}

// VerifyIPv4Checksum recomputes the header checksum of a serialized IPv4
// header and reports whether it is consistent. Used by tests and by the
// analyzer's sanity pass.
func VerifyIPv4Checksum(ipHeader []byte) bool {
	if len(ipHeader) < 20 {
		return false
	}
	hlen := int(ipHeader[0]&0x0f) * 4
	if hlen < 20 || hlen > len(ipHeader) {
		return false
	}
	return foldChecksum(internetChecksum(0, ipHeader[:hlen])) == 0
}
