package layers

import (
	"fmt"
	"testing"
)

// auditFrames covers every decode path the hot loop sees: TCP and UDP
// over IPv4, UDP over IPv6, ICMP echo, ARP, both IPX encapsulations, and
// a snaplen-truncated TCP header.
func auditFrames() map[string][]byte {
	tcp := BuildTCP(TCPOpts{
		FrameOpts: FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB},
		SrcPort:   33000, DstPort: 80, Seq: 100, Flags: TCPAck,
		Payload: []byte("GET / HTTP/1.0\r\n\r\n"),
	})
	frames := map[string][]byte{
		"tcp4": tcp,
		"udp4": BuildUDP(UDPOpts{
			FrameOpts: FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB},
			SrcPort:   5353, DstPort: 53, Payload: []byte{1, 2, 3, 4},
		}),
		"udp6": BuildUDP(UDPOpts{
			FrameOpts: FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ip6A, DstIP: ip6B},
			SrcPort:   5353, DstPort: 53, Payload: []byte{1, 2, 3, 4},
		}),
		"icmp": BuildICMP(ICMPOpts{
			FrameOpts: FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB},
			Type:      ICMPEchoRequest, ID: 9, Seq: 1,
		}),
		"tcp4-truncated": tcp[:54-12], // snaplen cuts into the TCP header
	}
	return frames
}

// TestDecodeZeroAlloc audits the decoder under the allocation model
// DESIGN.md commits to: Decode into a reused Packet performs zero heap
// allocations for every frame shape on the hot path.
func TestDecodeZeroAlloc(t *testing.T) {
	var p Packet
	for name, frame := range auditFrames() {
		frame := frame
		origLen := len(frame)
		if name == "tcp4-truncated" {
			origLen = 74
		}
		allocs := testing.AllocsPerRun(100, func() {
			_ = Decode(frame, origLen, &p)
		})
		if allocs != 0 {
			t.Errorf("%s: Decode allocates %.1f times per packet, want 0", name, allocs)
		}
	}
}

// TestFlowKeyOfZeroAlloc extends the audit one step down the hot path:
// flow keying of a decoded packet must not allocate either.
func TestFlowKeyOfZeroAlloc(t *testing.T) {
	for _, name := range []string{"tcp4", "udp4", "udp6"} {
		frame := auditFrames()[name]
		var p Packet
		if err := Decode(frame, len(frame), &p); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			_, _ = FlowKeyOf(&p)
		})
		if allocs != 0 {
			t.Errorf("%s: FlowKeyOf allocates %.1f times per packet, want 0", name, allocs)
		}
	}
}

// BenchmarkDecodeByFrame reports per-shape decode cost with -benchmem;
// the B/op column must stay 0 (TestDecodeZeroAlloc enforces it).
func BenchmarkDecodeByFrame(b *testing.B) {
	var p Packet
	for name, frame := range auditFrames() {
		frame := frame
		b.Run(fmt.Sprintf("frame=%s", name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = Decode(frame, len(frame), &p)
			}
		})
	}
}
