package layers

import (
	"net/netip"
	"testing"
)

// This file is the hostile-input bounds audit of the frame decoder: every
// prefix of every valid frame shape — including IP- and TCP-option-bearing
// variants — must decode without panicking or reading past the capture,
// either returning an error or a packet marked Truncated whose payload
// view stays inside the buffer. Corrupt version/IHL/data-offset fields
// must be rejected with an error, never a crash.

var (
	auditSrcMAC = MAC{0x00, 0x0b, 0xdb, 0x01, 0x02, 0x03}
	auditDstMAC = MAC{0x00, 0x0b, 0xdb, 0x04, 0x05, 0x06}
	auditSrcIP  = netip.MustParseAddr("128.3.2.10")
	auditDstIP  = netip.MustParseAddr("131.243.1.20")
	auditSrcIP6 = netip.MustParseAddr("2001:400::10")
	auditDstIP6 = netip.MustParseAddr("2001:400::20")
)

func auditFrameOpts() FrameOpts {
	return FrameOpts{SrcMAC: auditSrcMAC, DstMAC: auditDstMAC, SrcIP: auditSrcIP, DstIP: auditDstIP, IPID: 7}
}

func auditPayload(n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte(i*11 + 3)
	}
	return d
}

// withIPv4Options splices opts (length a multiple of 4) into an IHL-5
// IPv4 frame, fixing IHL, total length and the header checksum.
func withIPv4Options(t *testing.T, frame []byte, opts []byte) []byte {
	t.Helper()
	if len(opts)%4 != 0 {
		t.Fatalf("IP options length %d not a multiple of 4", len(opts))
	}
	if frame[14]&0x0f != 5 {
		t.Fatalf("base frame IHL is %d, want 5", frame[14]&0x0f)
	}
	out := make([]byte, 0, len(frame)+len(opts))
	out = append(out, frame[:14+20]...)
	out = append(out, opts...)
	out = append(out, frame[14+20:]...)
	ip := out[14:]
	ip[0] = 0x40 | byte(5+len(opts)/4)
	be.PutUint16(ip[2:4], be.Uint16(ip[2:4])+uint16(len(opts)))
	be.PutUint16(ip[10:12], 0)
	hlen := int(ip[0]&0x0f) * 4
	be.PutUint16(ip[10:12], foldChecksum(internetChecksum(0, ip[:hlen])))
	return out
}

// withTCPOptions splices opts (length a multiple of 4) into an offset-5
// TCP header inside an IHL-5 IPv4 frame, fixing the data offset and the
// IP total length. The TCP checksum is left stale — the decoder does not
// verify it.
func withTCPOptions(t *testing.T, frame []byte, opts []byte) []byte {
	t.Helper()
	if len(opts)%4 != 0 {
		t.Fatalf("TCP options length %d not a multiple of 4", len(opts))
	}
	const tcpOff = 14 + 20
	if frame[tcpOff+12]>>4 != 5 {
		t.Fatalf("base frame TCP data offset is %d, want 5", frame[tcpOff+12]>>4)
	}
	out := make([]byte, 0, len(frame)+len(opts))
	out = append(out, frame[:tcpOff+20]...)
	out = append(out, opts...)
	out = append(out, frame[tcpOff+20:]...)
	out[tcpOff+12] = byte(5+len(opts)/4) << 4
	ip := out[14:]
	be.PutUint16(ip[2:4], be.Uint16(ip[2:4])+uint16(len(opts)))
	be.PutUint16(ip[10:12], 0)
	be.PutUint16(ip[10:12], foldChecksum(internetChecksum(0, ip[:20])))
	return out
}

type truncFrame struct {
	name string
	data []byte
}

func truncFrames(t *testing.T) []truncFrame {
	t.Helper()
	tcp := BuildTCP(TCPOpts{FrameOpts: auditFrameOpts(), SrcPort: 2001, DstPort: 80,
		Seq: 0x1000, Ack: 0x2000, Flags: TCPAck | TCPPsh, Payload: auditPayload(48)})
	// MSS, two NOPs, SACK-permitted — the classic SYN option block.
	tcpOpts := []byte{2, 4, 0x05, 0xb4, 1, 1, 4, 2}
	ipOpts := []byte{7, 7, 4, 0, 0, 0, 0, 0} // record-route shell + padding

	frag := append([]byte(nil), tcp...)
	be.PutUint16(frag[14+6:14+8], 0x2000|185) // MF + non-zero fragment offset
	be.PutUint16(frag[14+10:14+12], 0)
	be.PutUint16(frag[14+10:14+12], foldChecksum(internetChecksum(0, frag[14:14+20])))

	unknownEther := append([]byte(nil), tcp[:40]...)
	be.PutUint16(unknownEther[12:14], 0x88cc) // LLDP: recognized by nothing here

	v6udp := BuildUDP(UDPOpts{
		FrameOpts: FrameOpts{SrcMAC: auditSrcMAC, DstMAC: auditDstMAC, SrcIP: auditSrcIP6, DstIP: auditDstIP6},
		SrcPort:   5353, DstPort: 5353, Payload: auditPayload(30)})

	return []truncFrame{
		{"tcp", tcp},
		{"tcp-ip-options", withIPv4Options(t, tcp, ipOpts)},
		{"tcp-tcp-options", withTCPOptions(t, tcp, tcpOpts)},
		{"tcp-both-options", withIPv4Options(t, withTCPOptions(t, tcp, tcpOpts), ipOpts)},
		{"ipv4-fragment", frag},
		{"udp", BuildUDP(UDPOpts{FrameOpts: auditFrameOpts(), SrcPort: 137, DstPort: 137, Payload: auditPayload(40)})},
		{"udp-ipv6", v6udp},
		{"icmp-echo", BuildICMP(ICMPOpts{FrameOpts: auditFrameOpts(), Type: ICMPEchoRequest, ID: 9, Seq: 1, Payload: auditPayload(32)})},
		{"arp", BuildARP(ARPOpts{SrcMAC: auditSrcMAC, DstMAC: Broadcast, Op: 1,
			SenderHW: auditSrcMAC, SenderIP: auditSrcIP, TargetIP: auditDstIP})},
		{"ipx-raw8023", BuildIPX(IPXOpts{SrcMAC: auditSrcMAC, DstMAC: auditDstMAC,
			SrcSocket: 0x4003, DstSocket: 0x0451, Raw8023: true, Payload: auditPayload(25)})},
		{"ipx-ethertype", BuildIPX(IPXOpts{SrcMAC: auditSrcMAC, DstMAC: auditDstMAC,
			SrcSocket: 0x4003, DstSocket: 0x0451, Payload: auditPayload(25)})},
		{"unknown-ethertype", unknownEther},
	}
}

// decodeNoPanic decodes and converts a panic into a test failure carrying
// the truncation context.
func decodeNoPanic(t *testing.T, data []byte, origLen int, p *Packet) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("decode panicked on %d of %d bytes: %v", len(data), origLen, r)
		}
	}()
	return Decode(data, origLen, p)
}

func TestDecodeTruncationAudit(t *testing.T) {
	for _, fr := range truncFrames(t) {
		t.Run(fr.name, func(t *testing.T) {
			var full Packet
			if err := Decode(fr.data, len(fr.data), &full); err != nil {
				t.Fatalf("full frame rejected: %v", err)
			}
			if full.Truncated {
				t.Fatal("full frame marked truncated")
			}
			for l := 0; l < len(fr.data); l++ {
				// Exact-capacity copy: any decoder read past the capture
				// length panics instead of silently seeing stale bytes.
				prefix := make([]byte, l)
				copy(prefix, fr.data[:l])
				var p Packet
				err := decodeNoPanic(t, prefix, len(fr.data), &p)
				if l < 14 {
					if err == nil {
						t.Fatalf("truncation %d: sub-Ethernet frame not rejected", l)
					}
					continue
				}
				if err != nil {
					continue // rejecting a truncated frame outright is fine
				}
				if !p.Truncated {
					t.Fatalf("truncation %d: accepted without the Truncated mark", l)
				}
				if len(p.Payload) > l {
					t.Fatalf("truncation %d: payload view %d bytes long", l, len(p.Payload))
				}
				if p.PayloadLen < 0 {
					t.Fatalf("truncation %d: negative payload length %d", l, p.PayloadLen)
				}
				// Same prefix presented as a complete (non-truncated)
				// capture: still no panic, no over-read.
				standalone := make([]byte, l)
				copy(standalone, fr.data[:l])
				var q Packet
				if err := decodeNoPanic(t, standalone, l, &q); err == nil && len(q.Payload) > l {
					t.Fatalf("standalone %d: payload view %d bytes long", l, len(q.Payload))
				}
			}
		})
	}
}

// TestDecodeCorruptHeaders patches individual header fields to invalid
// values: the decoder must return an error (or a bounded truncated parse
// for fields that merely overstate a length), and every truncation of the
// corrupt frame must stay panic-free too.
func TestDecodeCorruptHeaders(t *testing.T) {
	base := BuildTCP(TCPOpts{FrameOpts: auditFrameOpts(), SrcPort: 2001, DstPort: 80,
		Seq: 0x1000, Flags: TCPAck, Payload: auditPayload(20)})
	v6 := BuildUDP(UDPOpts{
		FrameOpts: FrameOpts{SrcMAC: auditSrcMAC, DstMAC: auditDstMAC, SrcIP: auditSrcIP6, DstIP: auditDstIP6},
		SrcPort:   53, DstPort: 53, Payload: auditPayload(12)})

	cases := []struct {
		name      string
		data      []byte
		mut       func([]byte)
		wantError bool
	}{
		{"ipv4-version-5", base, func(b []byte) { b[14] = 0x55 }, true},
		{"ipv4-version-0", base, func(b []byte) { b[14] = 0x05 }, true},
		{"ipv4-ihl-4", base, func(b []byte) { b[14] = 0x44 }, true},
		{"ipv4-ihl-0", base, func(b []byte) { b[14] = 0x40 }, true},
		{"tcp-offset-4", base, func(b []byte) { b[14+20+12] = 4 << 4 }, true},
		{"tcp-offset-0", base, func(b []byte) { b[14+20+12] = 0 }, true},
		// Overstated lengths are not errors — just bounded truncated parses.
		{"tcp-offset-15", base, func(b []byte) { b[14+20+12] = 15 << 4 }, false},
		{"ipv4-total-overstated", base, func(b []byte) { be.PutUint16(b[14+2:14+4], 0xFFFF) }, false},
		{"ipv6-version-4", v6, func(b []byte) { b[14] = 0x45 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := append([]byte(nil), tc.data...)
			tc.mut(data)
			var p Packet
			err := decodeNoPanic(t, data, len(data), &p)
			if tc.wantError && err == nil {
				t.Error("corrupt frame accepted without error")
			}
			if !tc.wantError && err != nil {
				t.Errorf("overstated-length frame rejected: %v", err)
			}
			if err == nil && len(p.Payload) > len(data) {
				t.Errorf("payload view %d bytes from a %d-byte frame", len(p.Payload), len(data))
			}
			for l := 0; l < len(data); l++ {
				prefix := make([]byte, l)
				copy(prefix, data[:l])
				var q Packet
				if err := decodeNoPanic(t, prefix, len(data), &q); err == nil && len(q.Payload) > l {
					t.Fatalf("truncation %d: payload view %d bytes long", l, len(q.Payload))
				}
			}
		})
	}
}
