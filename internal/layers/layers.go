// Package layers implements decoding and serialization of the packet
// formats that appear in the paper's traces: Ethernet II and 802.3 (raw
// IPX), ARP, IPX, IPv4, IPv6, TCP, UDP, and ICMP.
//
// The design follows the gopacket "DecodingLayerParser" idea: Decode fills
// a caller-owned Packet struct in place and sub-slices the original buffer,
// so the hot decode path performs no allocation. A bitmask records which
// layers were present. Serialization goes the other way for the traffic
// generator, emitting byte-exact frames (with correct checksums) that the
// decoder — or any other pcap tool — can parse.
package layers

import "net/netip"

// EtherType values seen in the traces.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPX  uint16 = 0x8137
	EtherTypeIPv6 uint16 = 0x86DD
)

// IP protocol numbers used by the paper's transport breakdown.
const (
	ProtoICMP  uint8 = 1
	ProtoIGMP  uint8 = 2
	ProtoTCP   uint8 = 6
	ProtoUDP   uint8 = 17
	ProtoGRE   uint8 = 47
	ProtoESP   uint8 = 50
	ProtoPIM   uint8 = 103
	Proto224   uint8 = 224 // the unidentified protocol the paper notes
	ProtoICMP6 uint8 = 58
)

// LayerMask records which layers Decode found in a frame.
type LayerMask uint16

// Layer presence bits.
const (
	LayerEthernet LayerMask = 1 << iota
	LayerARP
	LayerIPX
	LayerIPv4
	LayerIPv6
	LayerTCP
	LayerUDP
	LayerICMP
	LayerPayload
)

// Has reports whether all bits in m are set.
func (l LayerMask) Has(m LayerMask) bool { return l&m == m }

// MAC is an Ethernet hardware address.
type MAC [6]byte

// Broadcast is the all-ones Ethernet address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// Multicast reports whether the address has the group bit set.
func (m MAC) Multicast() bool { return m[0]&1 == 1 }

// Ethernet is the decoded link-layer header.
type Ethernet struct {
	Dst, Src  MAC
	EtherType uint16 // 0 for raw-802.3 IPX frames
	// Length802 is the 802.3 length field when EtherType < 0x0600.
	Length802 uint16
}

// ARP is a decoded ARP packet (Ethernet/IPv4 flavor only; anything else is
// recorded by opcode with zero addresses).
type ARP struct {
	Op                 uint16 // 1 request, 2 reply
	SenderHW, TargetHW MAC
	SenderIP, TargetIP netip.Addr
}

// IPX is a decoded Netware IPX header.
type IPX struct {
	Length     uint16
	Hops       uint8
	PacketType uint8
	DstNet     uint32
	DstNode    MAC
	DstSocket  uint16
	SrcNet     uint32
	SrcNode    MAC
	SrcSocket  uint16
}

// IPv4 is a decoded IPv4 header.
type IPv4 struct {
	IHL      uint8 // header length in 32-bit words
	TOS      uint8
	Length   uint16 // total length
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
}

// DF reports the don't-fragment bit.
func (ip *IPv4) DF() bool { return ip.Flags&0x2 != 0 }

// MF reports the more-fragments bit.
func (ip *IPv4) MF() bool { return ip.Flags&0x1 != 0 }

// Fragment reports whether this packet is part of a fragmented datagram.
func (ip *IPv4) Fragment() bool { return ip.MF() || ip.FragOff != 0 }

// IPv6 is a decoded IPv6 header (no extension-header walking beyond what
// the traces need; an unrecognized next header terminates decoding with
// the remaining bytes as payload).
type IPv6 struct {
	TrafficClass uint8
	FlowLabel    uint32
	Length       uint16 // payload length
	NextHeader   uint8
	HopLimit     uint8
	Src, Dst     netip.Addr
}

// TCP flag bits.
const (
	TCPFin uint8 = 1 << iota
	TCPSyn
	TCPRst
	TCPPsh
	TCPAck
	TCPUrg
)

// TCP is a decoded TCP header.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	Flags            uint8
	Window           uint16
	Checksum         uint16
	Urgent           uint16
}

// FlagStr renders flags as "SA", "F", "R", etc. for diagnostics.
func (t *TCP) FlagStr() string {
	buf := make([]byte, 0, 6)
	for _, fb := range []struct {
		bit uint8
		ch  byte
	}{{TCPSyn, 'S'}, {TCPFin, 'F'}, {TCPRst, 'R'}, {TCPPsh, 'P'}, {TCPAck, 'A'}, {TCPUrg, 'U'}} {
		if t.Flags&fb.bit != 0 {
			buf = append(buf, fb.ch)
		}
	}
	return string(buf)
}

// UDP is a decoded UDP header.
type UDP struct {
	SrcPort, DstPort uint16
	Length           uint16
	Checksum         uint16
}

// ICMP is a decoded ICMP header (v4).
type ICMP struct {
	Type, Code uint8
	Checksum   uint16
	ID, Seq    uint16 // meaningful for echo request/reply
}

// ICMP types the analyses care about.
const (
	ICMPEchoReply   uint8 = 0
	ICMPUnreachable uint8 = 3
	ICMPEchoRequest uint8 = 8
	ICMPTimeExceed  uint8 = 11
)

// Packet is the reusable decode target. After Decode, Layers records which
// fields are valid, Payload sub-slices the input at the transport payload,
// and Truncated reports that the frame claimed more bytes than were
// captured (snaplen truncation, ubiquitous in the paper's D1/D2).
type Packet struct {
	Eth     Ethernet
	ARP     ARP
	IPX     IPX
	IP4     IPv4
	IP6     IPv6
	TCP     TCP
	UDP     UDP
	ICMP    ICMP
	Layers  LayerMask
	Payload []byte
	// PayloadLen is the transport payload length implied by the headers
	// even when the capture is truncated; len(Payload) may be smaller.
	PayloadLen int
	Truncated  bool
}

// Reset clears the packet for reuse.
func (p *Packet) Reset() {
	p.Layers = 0
	p.Payload = nil
	p.PayloadLen = 0
	p.Truncated = false
}

// NetSrc returns the network-layer source address, if any.
func (p *Packet) NetSrc() (netip.Addr, bool) {
	switch {
	case p.Layers.Has(LayerIPv4):
		return p.IP4.Src, true
	case p.Layers.Has(LayerIPv6):
		return p.IP6.Src, true
	}
	return netip.Addr{}, false
}

// NetDst returns the network-layer destination address, if any.
func (p *Packet) NetDst() (netip.Addr, bool) {
	switch {
	case p.Layers.Has(LayerIPv4):
		return p.IP4.Dst, true
	case p.Layers.Has(LayerIPv6):
		return p.IP6.Dst, true
	}
	return netip.Addr{}, false
}

// IPProto returns the transport protocol number, if an IP layer is present.
func (p *Packet) IPProto() (uint8, bool) {
	switch {
	case p.Layers.Has(LayerIPv4):
		return p.IP4.Protocol, true
	case p.Layers.Has(LayerIPv6):
		return p.IP6.NextHeader, true
	}
	return 0, false
}

// Ports returns transport src/dst ports for TCP or UDP packets.
func (p *Packet) Ports() (src, dst uint16, ok bool) {
	switch {
	case p.Layers.Has(LayerTCP):
		return p.TCP.SrcPort, p.TCP.DstPort, true
	case p.Layers.Has(LayerUDP):
		return p.UDP.SrcPort, p.UDP.DstPort, true
	}
	return 0, 0, false
}
