package layers

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	macA = MAC{0x00, 0x11, 0x22, 0x33, 0x44, 0x55}
	macB = MAC{0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb}
	ipA  = netip.MustParseAddr("10.1.2.3")
	ipB  = netip.MustParseAddr("10.4.5.6")
	ip6A = netip.MustParseAddr("2001:db8::1")
	ip6B = netip.MustParseAddr("2001:db8::2")
)

func frameOpts() FrameOpts {
	return FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB, IPID: 7}
}

func TestTCPRoundTrip(t *testing.T) {
	payload := []byte("GET / HTTP/1.1\r\n\r\n")
	frame := BuildTCP(TCPOpts{
		FrameOpts: frameOpts(),
		SrcPort:   33000, DstPort: 80,
		Seq: 1000, Ack: 2000,
		Flags:   TCPPsh | TCPAck,
		Payload: payload,
	})
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Layers.Has(LayerEthernet | LayerIPv4 | LayerTCP | LayerPayload) {
		t.Fatalf("layers = %b", p.Layers)
	}
	if p.Eth.Src != macA || p.Eth.Dst != macB || p.Eth.EtherType != EtherTypeIPv4 {
		t.Errorf("ethernet mismatch: %+v", p.Eth)
	}
	if p.IP4.Src != ipA || p.IP4.Dst != ipB || p.IP4.Protocol != ProtoTCP {
		t.Errorf("ipv4 mismatch: %+v", p.IP4)
	}
	if !p.IP4.DF() || p.IP4.MF() || p.IP4.Fragment() {
		t.Errorf("flag decode wrong: %+v", p.IP4)
	}
	if p.TCP.SrcPort != 33000 || p.TCP.DstPort != 80 || p.TCP.Seq != 1000 || p.TCP.Ack != 2000 {
		t.Errorf("tcp mismatch: %+v", p.TCP)
	}
	if p.TCP.Flags != TCPPsh|TCPAck {
		t.Errorf("flags = %s", p.TCP.FlagStr())
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %q", p.Payload)
	}
	if p.PayloadLen != len(payload) {
		t.Errorf("payload len = %d", p.PayloadLen)
	}
	if p.Truncated {
		t.Error("unexpected truncation")
	}
	if !VerifyIPv4Checksum(frame[14:]) {
		t.Error("IPv4 checksum invalid")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	frame := BuildUDP(UDPOpts{FrameOpts: frameOpts(), SrcPort: 5353, DstPort: 53, Payload: payload})
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Layers.Has(LayerIPv4 | LayerUDP | LayerPayload) {
		t.Fatalf("layers = %b", p.Layers)
	}
	if p.UDP.SrcPort != 5353 || p.UDP.DstPort != 53 || int(p.UDP.Length) != 8+len(payload) {
		t.Errorf("udp mismatch: %+v", p.UDP)
	}
	if !bytes.Equal(p.Payload, payload) {
		t.Errorf("payload = %x", p.Payload)
	}
}

func TestUDPOverIPv6(t *testing.T) {
	o := frameOpts()
	o.SrcIP, o.DstIP = ip6A, ip6B
	frame := BuildUDP(UDPOpts{FrameOpts: o, SrcPort: 1024, DstPort: 53, Payload: []byte("x")})
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Layers.Has(LayerIPv6 | LayerUDP) {
		t.Fatalf("layers = %b", p.Layers)
	}
	if p.IP6.Src != ip6A || p.IP6.Dst != ip6B || p.IP6.NextHeader != ProtoUDP {
		t.Errorf("ipv6 mismatch: %+v", p.IP6)
	}
	src, ok := p.NetSrc()
	if !ok || src != ip6A {
		t.Errorf("NetSrc = %v %v", src, ok)
	}
}

func TestICMPEchoRoundTrip(t *testing.T) {
	frame := BuildICMP(ICMPOpts{FrameOpts: frameOpts(), Type: ICMPEchoRequest, ID: 77, Seq: 3, Payload: []byte("ping")})
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Layers.Has(LayerICMP) {
		t.Fatalf("layers = %b", p.Layers)
	}
	if p.ICMP.Type != ICMPEchoRequest || p.ICMP.ID != 77 || p.ICMP.Seq != 3 {
		t.Errorf("icmp mismatch: %+v", p.ICMP)
	}
	proto, ok := p.IPProto()
	if !ok || proto != ProtoICMP {
		t.Errorf("IPProto = %d %v", proto, ok)
	}
}

func TestARPRoundTrip(t *testing.T) {
	frame := BuildARP(ARPOpts{
		SrcMAC: macA, DstMAC: Broadcast,
		Op:       1,
		SenderHW: macA, SenderIP: ipA,
		TargetIP: ipB,
	})
	if len(frame) != 60 {
		t.Errorf("ARP frame len = %d, want padded 60", len(frame))
	}
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Layers.Has(LayerARP) {
		t.Fatalf("layers = %b", p.Layers)
	}
	if p.ARP.Op != 1 || p.ARP.SenderIP != ipA || p.ARP.TargetIP != ipB || p.ARP.SenderHW != macA {
		t.Errorf("arp mismatch: %+v", p.ARP)
	}
	if p.Eth.Dst != Broadcast || !p.Eth.Dst.Multicast() {
		t.Error("broadcast dst expected")
	}
}

func TestIPXBothEncapsulations(t *testing.T) {
	for _, raw := range []bool{false, true} {
		frame := BuildIPX(IPXOpts{
			SrcMAC: macA, DstMAC: Broadcast,
			SrcNet: 1, DstNet: 2,
			SrcSocket: 0x4003, DstSocket: 0x0452,
			PacketType: 4,
			Payload:    []byte("sap announce"),
			Raw8023:    raw,
		})
		var p Packet
		if err := Decode(frame, len(frame), &p); err != nil {
			t.Fatalf("raw=%v: %v", raw, err)
		}
		if !p.Layers.Has(LayerIPX) {
			t.Fatalf("raw=%v layers = %b", raw, p.Layers)
		}
		if p.IPX.SrcSocket != 0x4003 || p.IPX.DstSocket != 0x0452 || p.IPX.PacketType != 4 {
			t.Errorf("raw=%v ipx mismatch: %+v", raw, p.IPX)
		}
		if raw && p.Eth.EtherType != 0 {
			t.Errorf("raw frame should have no ethertype, got %#x", p.Eth.EtherType)
		}
		if !raw && p.Eth.EtherType != EtherTypeIPX {
			t.Errorf("ethertype = %#x", p.Eth.EtherType)
		}
	}
}

func TestSnaplenTruncatedTCP(t *testing.T) {
	payload := bytes.Repeat([]byte{0xaa}, 1000)
	frame := BuildTCP(TCPOpts{FrameOpts: frameOpts(), SrcPort: 1, DstPort: 2, Flags: TCPAck, Payload: payload})
	// Simulate the paper's 68-byte snaplen.
	snap := frame[:68]
	var p Packet
	if err := Decode(snap, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Truncated {
		t.Error("should be marked truncated")
	}
	if !p.Layers.Has(LayerTCP) {
		t.Error("TCP header should still decode from 68 bytes")
	}
	if p.PayloadLen != 1000 {
		t.Errorf("PayloadLen = %d, want 1000 (from headers)", p.PayloadLen)
	}
	if len(p.Payload) >= 1000 {
		t.Errorf("captured payload should be short, got %d", len(p.Payload))
	}
}

func TestShortFrame(t *testing.T) {
	var p Packet
	if err := Decode([]byte{1, 2, 3}, 3, &p); err != ErrShortFrame {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestUnknownEtherType(t *testing.T) {
	frame := make([]byte, 20)
	copy(frame[0:6], macB[:])
	copy(frame[6:12], macA[:])
	be.PutUint16(frame[12:14], 0x88cc) // LLDP, not handled
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if !p.Layers.Has(LayerEthernet) || p.Layers.Has(LayerIPv4) {
		t.Errorf("layers = %b", p.Layers)
	}
}

func TestFragmentNoTransportParse(t *testing.T) {
	frame := BuildTCP(TCPOpts{FrameOpts: frameOpts(), SrcPort: 9, DstPort: 10, Flags: TCPAck, Payload: []byte("abcdef")})
	// Turn it into a non-first fragment: set frag offset 100, fix checksum.
	ip := frame[14:]
	ip[6], ip[7] = 0x20, 100 // MF + offset
	ip[10], ip[11] = 0, 0
	be.PutUint16(ip[10:12], foldChecksum(internetChecksum(0, ip[:20])))
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if p.Layers.Has(LayerTCP) {
		t.Error("non-first fragment should not decode TCP")
	}
	if !p.IP4.Fragment() || !p.IP4.MF() {
		t.Errorf("fragment flags: %+v", p.IP4)
	}
}

func TestPacketReset(t *testing.T) {
	frame := BuildTCP(TCPOpts{FrameOpts: frameOpts(), SrcPort: 1, DstPort: 2, Flags: TCPSyn})
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	arp := BuildARP(ARPOpts{SrcMAC: macA, DstMAC: Broadcast, Op: 1, SenderHW: macA, SenderIP: ipA, TargetIP: ipB})
	if err := Decode(arp, len(arp), &p); err != nil {
		t.Fatal(err)
	}
	if p.Layers.Has(LayerTCP) || p.Layers.Has(LayerIPv4) {
		t.Error("stale layers survived reuse")
	}
}

func TestFlowKeyCanonical(t *testing.T) {
	k := FlowKey{Proto: ProtoTCP, Src: ipB, Dst: ipA, SrcPort: 80, DstPort: 33000}
	c1, flipped1 := k.Canonical()
	c2, flipped2 := k.Reverse().Canonical()
	if c1 != c2 {
		t.Errorf("canonical keys differ: %v vs %v", c1, c2)
	}
	if flipped1 == flipped2 {
		t.Error("exactly one direction should be flipped")
	}
	if k.Reverse().Reverse() != k {
		t.Error("double reverse should be identity")
	}
}

func TestFlowKeySamePortOrdering(t *testing.T) {
	k := FlowKey{Proto: ProtoTCP, Src: ipA, Dst: ipA, SrcPort: 9, DstPort: 5}
	c, flipped := k.Canonical()
	if !flipped || c.SrcPort != 5 {
		t.Errorf("same-addr canonicalization: %+v flipped=%v", c, flipped)
	}
}

func TestHostPairUnordered(t *testing.T) {
	if NewHostPair(ipA, ipB) != NewHostPair(ipB, ipA) {
		t.Error("host pair should be direction independent")
	}
}

func TestFlowKeyOf(t *testing.T) {
	frame := BuildUDP(UDPOpts{FrameOpts: frameOpts(), SrcPort: 137, DstPort: 137, Payload: []byte("x")})
	var p Packet
	if err := Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	k, ok := FlowKeyOf(&p)
	if !ok {
		t.Fatal("no flow key")
	}
	if k.Proto != ProtoUDP || k.Src != ipA || k.SrcPort != 137 {
		t.Errorf("key = %v", k)
	}
	// Non-IP packet has no flow key.
	arp := BuildARP(ARPOpts{SrcMAC: macA, DstMAC: Broadcast, Op: 1, SenderHW: macA, SenderIP: ipA, TargetIP: ipB})
	if err := Decode(arp, len(arp), &p); err != nil {
		t.Fatal(err)
	}
	if _, ok := FlowKeyOf(&p); ok {
		t.Error("ARP should not produce a flow key")
	}
}

func TestMulticastMAC(t *testing.T) {
	m := MulticastMAC(netip.MustParseAddr("239.255.255.250"))
	want := MAC{0x01, 0x00, 0x5e, 0x7f, 0xff, 0xfa}
	if m != want {
		t.Errorf("mac = %v, want %v", m, want)
	}
	if !m.Multicast() {
		t.Error("multicast bit missing")
	}
}

// Property: any generated TCP frame decodes back to the same header fields
// and payload for arbitrary ports/seq/payload.
func TestTCPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		flags &= 0x3f
		frame := BuildTCP(TCPOpts{
			FrameOpts: frameOpts(),
			SrcPort:   sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags,
			Payload: payload,
		})
		var p Packet
		if err := Decode(frame, len(frame), &p); err != nil {
			return false
		}
		return p.TCP.SrcPort == sp && p.TCP.DstPort == dp &&
			p.TCP.Seq == seq && p.TCP.Ack == ack && p.TCP.Flags == flags &&
			bytes.Equal(p.Payload, payload) &&
			VerifyIPv4Checksum(frame[14:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding never panics on arbitrary bytes and never claims more
// payload than captured+missing.
func TestDecodeFuzzProperty(t *testing.T) {
	f := func(data []byte, extra uint8) bool {
		var p Packet
		_ = Decode(data, len(data)+int(extra), &p)
		return len(p.Payload) <= len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: UDP checksum validates against recomputation.
func TestUDPChecksumProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		frame := BuildUDP(UDPOpts{FrameOpts: frameOpts(), SrcPort: sp, DstPort: dp, Payload: payload})
		var p Packet
		if err := Decode(frame, len(frame), &p); err != nil {
			return false
		}
		// Recompute: checksum field zeroed, sum over datagram + pseudo header.
		dg := frame[14+20:]
		sum := pseudoHeaderSum(ipA, ipB, ProtoUDP, len(dg))
		cp := make([]byte, len(dg))
		copy(cp, dg)
		cp[6], cp[7] = 0, 0
		return foldChecksum(internetChecksum(sum, cp)) == p.UDP.Checksum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeTCP(b *testing.B) {
	frame := BuildTCP(TCPOpts{FrameOpts: frameOpts(), SrcPort: 33000, DstPort: 80, Flags: TCPAck, Payload: bytes.Repeat([]byte{0xaa}, 512)})
	var p Packet
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Decode(frame, len(frame), &p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildTCP(b *testing.B) {
	opts := TCPOpts{FrameOpts: frameOpts(), SrcPort: 33000, DstPort: 80, Flags: TCPAck, Payload: bytes.Repeat([]byte{0xaa}, 512)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = BuildTCP(opts)
	}
}
