package reassembly

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInOrderDelivery(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.Segment(100, []byte("hello "))
	s.Segment(106, []byte("world"))
	if string(c.Buf) != "hello world" {
		t.Errorf("buf = %q", c.Buf)
	}
	if c.Gaps != 0 {
		t.Errorf("gaps = %d", c.Gaps)
	}
}

func TestOutOfOrderReorder(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.SetISN(1000)
	s.Segment(1006, []byte("world"))
	if len(c.Buf) != 0 {
		t.Fatalf("early delivery: %q", c.Buf)
	}
	s.Segment(1000, []byte("hello "))
	if string(c.Buf) != "hello world" {
		t.Errorf("buf = %q", c.Buf)
	}
	if s.PendingBytes() != 0 {
		t.Errorf("pending = %d", s.PendingBytes())
	}
}

func TestRetransmissionDropped(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.Segment(0, []byte("abcd"))
	s.Segment(0, []byte("abcd")) // full retransmission
	s.Segment(2, []byte("cdef")) // partial overlap extends
	if string(c.Buf) != "abcdef" {
		t.Errorf("buf = %q", c.Buf)
	}
}

func TestGapSkipAfterThreshold(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.MaxPending = 10
	s.SetISN(0)
	// Lost [0,100); deliver at 100 beyond the pending budget.
	s.Segment(100, bytes.Repeat([]byte{'x'}, 11))
	if c.Gaps != 1 || c.GapByte != 100 {
		t.Errorf("gaps=%d gapbytes=%d", c.Gaps, c.GapByte)
	}
	if len(c.Buf) != 11 {
		t.Errorf("buf len = %d", len(c.Buf))
	}
}

func TestCloseFlushesPending(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.SetISN(0)
	s.Segment(10, []byte("BB"))
	s.Segment(20, []byte("CC"))
	s.Close()
	if string(c.Buf) != "BBCC" {
		t.Errorf("buf = %q", c.Buf)
	}
	if c.Gaps != 2 {
		t.Errorf("gaps = %d, want 2", c.Gaps)
	}
	if c.GapByte != 10+8 {
		t.Errorf("gap bytes = %d, want 18", c.GapByte)
	}
	// Post-close segments ignored.
	s.Segment(30, []byte("DD"))
	if string(c.Buf) != "BBCC" {
		t.Error("segment accepted after close")
	}
}

func TestSequenceWraparound(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	start := uint32(0xFFFFFFFE)
	s.SetISN(start)
	s.Segment(start, []byte("ab")) // crosses the wrap
	s.Segment(0, []byte("cd"))     // post-wrap
	if string(c.Buf) != "abcd" {
		t.Errorf("buf = %q", c.Buf)
	}
}

func TestDuplicateOutOfOrderKeepsLonger(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.SetISN(0)
	s.Segment(10, []byte("XY"))
	s.Segment(10, []byte("XYZ")) // longer duplicate
	s.Segment(0, bytes.Repeat([]byte{'a'}, 10))
	if string(c.Buf) != "aaaaaaaaaaXYZ" {
		t.Errorf("buf = %q", c.Buf)
	}
}

func TestEmptySegmentIgnored(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.Segment(5, nil)
	s.Segment(5, []byte{})
	if len(c.Buf) != 0 || s.PendingBytes() != 0 {
		t.Error("empty segments should be no-ops")
	}
}

func TestBufferConsumerLimit(t *testing.T) {
	c := BufferConsumer{Limit: 4}
	c.Data([]byte("abcdef"))
	if string(c.Buf) != "abcd" || c.Overflow != 2 {
		t.Errorf("buf=%q overflow=%d", c.Buf, c.Overflow)
	}
	c.Data([]byte("gh"))
	if c.Overflow != 4 {
		t.Errorf("overflow = %d", c.Overflow)
	}
}

// Property: feeding a random permutation of contiguous chunks reproduces
// the original byte stream with no gaps.
func TestPermutationProperty(t *testing.T) {
	f := func(seed int64, nChunks uint8) bool {
		n := int(nChunks%20) + 1
		rng := rand.New(rand.NewSource(seed))
		orig := make([]byte, 0, n*8)
		type chunk struct {
			seq  uint32
			data []byte
		}
		chunks := make([]chunk, 0, n)
		seq := rng.Uint32()
		isn := seq
		for i := 0; i < n; i++ {
			sz := rng.Intn(8) + 1
			data := make([]byte, sz)
			rng.Read(data)
			chunks = append(chunks, chunk{seq: seq, data: data})
			orig = append(orig, data...)
			seq += uint32(sz)
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		var c BufferConsumer
		s := NewStream(&c)
		s.SetISN(isn)
		for _, ch := range chunks {
			s.Segment(ch.seq, ch.data)
		}
		s.Close()
		return c.Gaps == 0 && bytes.Equal(c.Buf, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: with duplicated chunks mixed in, output still equals original.
func TestRetransmissionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(15) + 1
		orig := make([]byte, 0)
		type chunk struct {
			seq  uint32
			data []byte
		}
		var chunks []chunk
		seq := uint32(1 << 31) // exercise high sequence space
		isn := seq
		for i := 0; i < n; i++ {
			sz := rng.Intn(10) + 1
			data := make([]byte, sz)
			rng.Read(data)
			chunks = append(chunks, chunk{seq, data})
			if rng.Intn(2) == 0 { // duplicate some chunks
				chunks = append(chunks, chunk{seq, data})
			}
			orig = append(orig, data...)
			seq += uint32(sz)
		}
		rng.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		var c BufferConsumer
		s := NewStream(&c)
		s.SetISN(isn)
		for _, ch := range chunks {
			s.Segment(ch.seq, ch.data)
		}
		s.Close()
		return bytes.Equal(c.Buf, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInOrderStream(b *testing.B) {
	data := bytes.Repeat([]byte{0xaa}, 1460)
	b.SetBytes(int64(len(data)))
	var c BufferConsumer
	c.Limit = 1 // avoid unbounded growth; we measure reassembly cost
	s := NewStream(&c)
	seq := uint32(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Segment(seq, data)
		seq += uint32(len(data))
	}
}
