package reassembly

import "sync"

// Buffer recycling for the reassembly layer. Two kinds of allocation used
// to dominate the analysis hot path: the per-segment copies made for
// out-of-order TCP data, and the append-growth of the BufferConsumer
// byte buffers that hold reassembled streams until replay. Both now draw
// from a shared size-classed pool, so in steady state a trace's buffers
// are the previous trace's buffers.
//
// The pool is a mutex-guarded free list per power-of-two size class
// rather than a sync.Pool: Put/Get never allocate (sync.Pool would box a
// slice header per Put), and the contention is low — buffers are fetched
// on stream growth and returned by the replay workers, a handful of
// Put calls per connection.
const (
	minClassBits = 12 // 4 KB: smallest pooled capacity
	maxClassBits = 22 // 4 MB: the largest BufferConsumer limit in use
	numClasses   = maxClassBits - minClassBits + 1
	// maxRetainPerClass bounds how many bytes each size class keeps
	// parked, so one huge trace cannot pin memory forever.
	maxRetainPerClass = 32 << 20
)

type bufPool struct {
	mu   sync.Mutex
	free [numClasses][][]byte
}

var pool bufPool

// classFor returns the smallest size class whose capacity is ≥ n, or -1
// when n exceeds the largest class.
func classFor(n int) int {
	size := 1 << minClassBits
	for c := 0; c < numClasses; c++ {
		if n <= size {
			return c
		}
		size <<= 1
	}
	return -1
}

// GetBuffer returns a zero-length buffer with capacity ≥ n, recycled when
// one is available. Pair it with PutBuffer when the data is dead.
func GetBuffer(n int) []byte {
	c := classFor(n)
	if c < 0 {
		return make([]byte, 0, n)
	}
	pool.mu.Lock()
	if free := pool.free[c]; len(free) > 0 {
		b := free[len(free)-1]
		free[len(free)-1] = nil
		pool.free[c] = free[:len(free)-1]
		pool.mu.Unlock()
		return b
	}
	pool.mu.Unlock()
	return make([]byte, 0, 1<<(minClassBits+c))
}

// AppendPooled appends d to dst, growing dst through the buffer pool
// (double, copy, recycle the outgrown array) instead of the allocator.
// It is the pooled analogue of append for long-lived accumulation
// buffers; hand the final buffer to PutBuffer when its contents die.
func AppendPooled(dst, d []byte) []byte {
	if need := len(dst) + len(d); need > cap(dst) {
		newCap := 2 * cap(dst)
		if newCap < need {
			newCap = need
		}
		nb := GetBuffer(newCap)
		nb = nb[:len(dst)]
		copy(nb, dst)
		PutBuffer(dst)
		dst = nb
	}
	return append(dst, d...)
}

// PutBuffer returns a buffer to the pool. The caller must not touch b (or
// any slice aliasing it) afterwards. Undersized and oversized buffers are
// dropped for the garbage collector; putting nil is a no-op.
func PutBuffer(b []byte) {
	if cap(b) < 1<<minClassBits {
		return
	}
	// File under the largest class the capacity fully covers, so a Get
	// from that class always satisfies its size guarantee.
	c := 0
	for c+1 < numClasses && cap(b) >= 1<<(minClassBits+c+1) {
		c++
	}
	if cap(b) > 1<<maxClassBits {
		return
	}
	pool.mu.Lock()
	if len(pool.free[c])<<(minClassBits+c) < maxRetainPerClass {
		pool.free[c] = append(pool.free[c], b[:0])
	}
	pool.mu.Unlock()
}
