package reassembly

import (
	"testing"
)

// fuzzConsumer records the delivered event sequence and immediately
// verifies the borrow contract: Data slices are only read during the
// callback, and every delivered byte must match the position-determined
// pattern the fuzz harness feeds in.
type fuzzConsumer struct {
	t         *testing.T
	pos       uint32 // absolute sequence of the next expected byte
	delivered int
	gapBytes  int
	gaps      int
}

func (f *fuzzConsumer) Data(b []byte) {
	for i, by := range b {
		// Corrupted ops invert the pattern; first-wins means either copy
		// may legitimately be the one delivered for its position.
		if want := patByte(f.pos + uint32(i)); by != want && by != want^0xFF {
			f.t.Fatalf("delivered byte at seq %d = %#x, want %#x or %#x", f.pos+uint32(i), by, want, want^0xFF)
		}
	}
	f.pos += uint32(len(b))
	f.delivered += len(b)
}

func (f *fuzzConsumer) Gap(n int) {
	if n <= 0 {
		f.t.Fatalf("non-positive gap %d", n)
	}
	f.pos += uint32(n)
	f.gapBytes += n
	f.gaps++
}

// FuzzStreamSegment drives Stream with arbitrary interleavings of
// overlapping, out-of-order, duplicated and gapped segments — including
// evasion-style retransmissions whose payload bytes conflict with the
// first copy (op flag 0x40 inverts the pattern) — and asserts the
// fundamental reassembly invariants: the consumer sees a consistent
// prefix (bytes and gaps in strictly increasing sequence order, every
// byte matching one of the copies sent for its position), and the
// Accounting ledger conserves exactly (ingest = delivered + duplicate +
// conflict + discarded + pending; cursor advance = delivered + skipped).
func FuzzStreamSegment(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x20, 0x01, 0x00, 0x30}, uint32(1000), uint16(512))
	f.Add([]byte{0xff, 0x00, 0x08, 0x10, 0x00, 0x08, 0x00, 0x00, 0x08}, uint32(0xFFFFFF00), uint16(64))
	f.Add([]byte{0x20, 0x03, 0x40, 0x10, 0x00, 0x80, 0x30, 0x05, 0x08}, uint32(1<<31), uint16(128))
	// Conflicting overlap: two out-of-order copies of the same range, the
	// second inverted (0x40 flag), then the filler that drains them.
	f.Add([]byte{0x40, 0x01, 0x1f, 0x40, 0x41, 0x1f, 0x00, 0x00, 0x3f}, uint32(2000), uint16(1024))
	f.Fuzz(func(t *testing.T, ops []byte, isn uint32, maxPending uint16) {
		const window = 1 << 14
		c := &fuzzConsumer{t: t, pos: isn}
		s := NewStream(c)
		s.MaxPending = int(maxPending%4096) + 1
		s.SetISN(isn)
		ingest := 0
		// Each op is 3 bytes: a 12-bit offset into the window, a corrupt
		// flag (0x40: inverted payload content), and a length.
		for len(ops) >= 3 {
			off := uint32(ops[0]) | uint32(ops[1]&0x3f)<<8
			corrupt := ops[1]&0x40 != 0
			length := int(ops[2])%512 + 1
			ops = ops[3:]
			if off+uint32(length) > window {
				length = int(window - off)
			}
			if length == 0 {
				continue
			}
			seq := isn + off
			data := patData(seq, length)
			if corrupt {
				for i := range data {
					data[i] ^= 0xFF
				}
			}
			s.Segment(seq, data)
			ingest += length
			if s.PendingBytes() > s.MaxPending {
				t.Fatalf("pending %d exceeds MaxPending %d after Segment", s.PendingBytes(), s.MaxPending)
			}
			if s.PendingBytes() < 0 {
				t.Fatalf("negative pending %d", s.PendingBytes())
			}
			a := s.Accounting()
			if got := a.DeliveredBytes + a.DuplicateBytes + a.ConflictBytes + a.DiscardedBytes + int64(s.PendingBytes()); got != a.IngestBytes {
				t.Fatalf("conservation broken mid-stream: ingest %d, accounted %d (%+v)", a.IngestBytes, got, a)
			}
			if a.PeakPendingBytes > int64(s.MaxPending) {
				t.Fatalf("peak pending %d exceeds MaxPending %d", a.PeakPendingBytes, s.MaxPending)
			}
		}
		s.Close()
		if s.PendingBytes() != 0 {
			t.Fatalf("pending = %d after Close", s.PendingBytes())
		}
		a := s.Accounting()
		if a.IngestBytes != int64(ingest) {
			t.Fatalf("ingest ledger %d, fed %d", a.IngestBytes, ingest)
		}
		if got := a.DeliveredBytes + a.DuplicateBytes + a.ConflictBytes + a.DiscardedBytes; got != a.IngestBytes {
			t.Fatalf("conservation broken after Close: ingest %d, accounted %d (%+v)", a.IngestBytes, got, a)
		}
		if a.DeliveredBytes != int64(c.delivered) || a.GapSkippedBytes != int64(c.gapBytes) || a.GapEvents != int64(c.gaps) {
			t.Fatalf("ledger %+v disagrees with consumer (delivered %d, gapBytes %d, gaps %d)", a, c.delivered, c.gapBytes, c.gaps)
		}
		// The cursor moved exactly by what was delivered plus what was
		// declared lost, and never past the window.
		advance := c.pos - isn
		if int(advance) != c.delivered+c.gapBytes {
			t.Fatalf("cursor advanced %d; delivered %d + gaps %d", advance, c.delivered, c.gapBytes)
		}
		if advance > window {
			t.Fatalf("cursor advanced %d past the %d-byte window", advance, window)
		}
	})
}
