package reassembly

import (
	"testing"
)

// fuzzConsumer records the delivered event sequence and immediately
// verifies the borrow contract: Data slices are only read during the
// callback, and every delivered byte must match the position-determined
// pattern the fuzz harness feeds in.
type fuzzConsumer struct {
	t         *testing.T
	pos       uint32 // absolute sequence of the next expected byte
	delivered int
	gapBytes  int
	gaps      int
}

func (f *fuzzConsumer) Data(b []byte) {
	for i, by := range b {
		if want := patByte(f.pos + uint32(i)); by != want {
			f.t.Fatalf("delivered byte at seq %d = %#x, want %#x", f.pos+uint32(i), by, want)
		}
	}
	f.pos += uint32(len(b))
	f.delivered += len(b)
}

func (f *fuzzConsumer) Gap(n int) {
	if n <= 0 {
		f.t.Fatalf("non-positive gap %d", n)
	}
	f.pos += uint32(n)
	f.gapBytes += n
	f.gaps++
}

// FuzzStreamSegment drives Stream with arbitrary interleavings of
// overlapping, out-of-order, duplicated and gapped segments, all carrying
// position-determined content, and asserts the fundamental reassembly
// invariant: the consumer sees a consistent prefix — bytes and gaps in
// strictly increasing sequence order, every byte correct for its position,
// and the accounting (delivered + skipped = cursor advance, pending = 0
// after Close) exact.
func FuzzStreamSegment(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x20, 0x01, 0x00, 0x30}, uint32(1000), uint16(512))
	f.Add([]byte{0xff, 0x00, 0x08, 0x10, 0x00, 0x08, 0x00, 0x00, 0x08}, uint32(0xFFFFFF00), uint16(64))
	f.Add([]byte{0x20, 0x03, 0x40, 0x10, 0x00, 0x80, 0x30, 0x05, 0x08}, uint32(1<<31), uint16(128))
	f.Fuzz(func(t *testing.T, ops []byte, isn uint32, maxPending uint16) {
		const window = 1 << 14
		c := &fuzzConsumer{t: t, pos: isn}
		s := NewStream(c)
		s.MaxPending = int(maxPending%4096) + 1
		s.SetISN(isn)
		// Each op is 3 bytes: a 12-bit offset into the window and a length.
		for len(ops) >= 3 {
			off := uint32(ops[0]) | uint32(ops[1]&0x3f)<<8
			length := int(ops[2])%512 + 1
			ops = ops[3:]
			if off+uint32(length) > window {
				length = int(window - off)
			}
			if length == 0 {
				continue
			}
			seq := isn + off
			s.Segment(seq, patData(seq, length))
			if s.PendingBytes() > s.MaxPending {
				t.Fatalf("pending %d exceeds MaxPending %d after Segment", s.PendingBytes(), s.MaxPending)
			}
			if s.PendingBytes() < 0 {
				t.Fatalf("negative pending %d", s.PendingBytes())
			}
		}
		s.Close()
		if s.PendingBytes() != 0 {
			t.Fatalf("pending = %d after Close", s.PendingBytes())
		}
		// The cursor moved exactly by what was delivered plus what was
		// declared lost, and never past the window.
		advance := c.pos - isn
		if int(advance) != c.delivered+c.gapBytes {
			t.Fatalf("cursor advanced %d; delivered %d + gaps %d", advance, c.delivered, c.gapBytes)
		}
		if advance > window {
			t.Fatalf("cursor advanced %d past the %d-byte window", advance, window)
		}
	})
}
