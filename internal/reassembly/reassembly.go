// Package reassembly reconstructs in-order TCP byte streams from decoded
// segments, one Stream per flow direction. It tolerates the realities of
// the paper's traces: out-of-order arrival, retransmission (overlapping
// sequence ranges keep the first copy, the behaviour of most monitors),
// and capture gaps (a receiver ACKing data the trace never contains —
// which the paper observed and attributed to incomplete capture). Gaps are
// skipped after a configurable amount of buffered out-of-order data, with
// the skip reported to the consumer so application analyzers can resync.
package reassembly

import (
	"sort"
)

// Consumer receives the reassembled byte stream of one flow direction.
type Consumer interface {
	// Data delivers the next in-order chunk.
	Data(b []byte)
	// Gap reports that n bytes were skipped (lost to capture or truncation)
	// before the following Data call.
	Gap(n int)
}

// Stream reassembles one direction of a TCP connection.
type Stream struct {
	consumer Consumer
	next     uint32 // next expected sequence number
	started  bool
	// pending holds out-of-order segments keyed by sequence number.
	pending []segment
	// pendingBytes tracks buffered volume for the gap-skip policy.
	pendingBytes int
	// MaxPending is the buffered-bytes threshold beyond which the stream
	// declares a gap and skips forward. Default 256 KB.
	MaxPending int
	closed     bool
}

type segment struct {
	seq  uint32
	data []byte
}

// NewStream returns a stream delivering to consumer.
func NewStream(consumer Consumer) *Stream {
	return &Stream{consumer: consumer, MaxPending: 256 << 10}
}

// seqLess reports a < b in 32-bit sequence space.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// SetISN establishes the initial sequence number (the SYN's seq + 1).
// Calling it is optional; if not called, the first data segment's sequence
// number seeds the stream.
func (s *Stream) SetISN(seq uint32) {
	if !s.started {
		s.next = seq
		s.started = true
	}
}

// Segment feeds one TCP segment's payload at the given sequence number.
func (s *Stream) Segment(seq uint32, data []byte) {
	if s.closed || len(data) == 0 {
		return
	}
	if !s.started {
		s.next = seq
		s.started = true
	}
	// Drop or trim data entirely in the past (retransmission).
	if seqLess(seq, s.next) {
		overlap := s.next - seq
		if uint32(len(data)) <= overlap {
			return
		}
		data = data[overlap:]
		seq = s.next
	}
	if seq == s.next {
		s.consumer.Data(data)
		s.next += uint32(len(data))
		s.drainPending()
		return
	}
	s.insertPending(seq, data)
	if s.pendingBytes > s.MaxPending {
		s.skipToPending()
	}
}

func (s *Stream) insertPending(seq uint32, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	idx := sort.Search(len(s.pending), func(i int) bool {
		return !seqLess(s.pending[i].seq, seq)
	})
	if idx < len(s.pending) && s.pending[idx].seq == seq {
		// Duplicate out-of-order retransmission: keep the longer copy.
		if len(cp) > len(s.pending[idx].data) {
			s.pendingBytes += len(cp) - len(s.pending[idx].data)
			s.pending[idx].data = cp
		}
		return
	}
	s.pending = append(s.pending, segment{})
	copy(s.pending[idx+1:], s.pending[idx:])
	s.pending[idx] = segment{seq: seq, data: cp}
	s.pendingBytes += len(cp)
}

func (s *Stream) drainPending() {
	for len(s.pending) > 0 {
		seg := s.pending[0]
		if seqLess(s.next, seg.seq) {
			return
		}
		s.pending = s.pending[1:]
		s.pendingBytes -= len(seg.data)
		if seqLess(seg.seq, s.next) {
			overlap := s.next - seg.seq
			if uint32(len(seg.data)) <= overlap {
				continue
			}
			seg.data = seg.data[overlap:]
		}
		s.consumer.Data(seg.data)
		s.next += uint32(len(seg.data))
	}
}

// skipToPending declares the bytes between next and the earliest pending
// segment lost, reports the gap, and resumes from the buffer.
func (s *Stream) skipToPending() {
	if len(s.pending) == 0 {
		return
	}
	gap := s.pending[0].seq - s.next
	s.consumer.Gap(int(gap))
	s.next = s.pending[0].seq
	s.drainPending()
}

// Close flushes any buffered segments (reporting gaps between them) and
// marks the stream finished. Used at FIN/RST or end of trace.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	for len(s.pending) > 0 {
		s.skipToPending()
	}
	s.closed = true
}

// PendingBytes reports how much out-of-order data is buffered.
func (s *Stream) PendingBytes() int { return s.pendingBytes }

// BufferConsumer is a Consumer that accumulates the stream into memory,
// recording gap positions. It is the consumer used by most application
// analyzers in this repository.
type BufferConsumer struct {
	Buf     []byte
	Gaps    int
	GapByte int
	// Limit bounds growth; excess data is counted but discarded. Zero
	// means unlimited.
	Limit int
	// Overflow counts bytes dropped due to Limit.
	Overflow int
}

// Data implements Consumer.
func (b *BufferConsumer) Data(d []byte) {
	if b.Limit > 0 && len(b.Buf)+len(d) > b.Limit {
		keep := b.Limit - len(b.Buf)
		if keep < 0 {
			keep = 0
		}
		b.Buf = append(b.Buf, d[:keep]...)
		b.Overflow += len(d) - keep
		return
	}
	b.Buf = append(b.Buf, d...)
}

// Gap implements Consumer.
func (b *BufferConsumer) Gap(n int) {
	b.Gaps++
	b.GapByte += n
}
