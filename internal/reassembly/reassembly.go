// Package reassembly reconstructs in-order TCP byte streams from decoded
// segments, one Stream per flow direction. It tolerates the realities of
// the paper's traces: out-of-order arrival, retransmission (overlapping
// sequence ranges keep the first copy, the behaviour of most monitors),
// and capture gaps (a receiver ACKing data the trace never contains —
// which the paper observed and attributed to incomplete capture). Gaps are
// skipped after a configurable amount of buffered out-of-order data, with
// the skip reported to the consumer so application analyzers can resync.
//
// The layer is (near-)zero-copy: in-order segments are delivered to the
// consumer as slices of the caller's buffer, and only genuinely
// out-of-order bytes are copied — into pooled buffers recycled through
// GetBuffer/PutBuffer. Overlap between buffered segments is trimmed away
// at insertion, so pending memory (and the gap-skip accounting) covers
// each missing byte exactly once no matter how heavily the trace
// retransmits.
//
// # Overlap-conflict policy
//
// When two segments cover the same sequence range, the first copy wins —
// the paper-era Bro policy. Concretely:
//
//   - Bytes at or behind the delivery cursor are never re-delivered. A
//     retransmission overlapping already-delivered data is trimmed and the
//     trimmed bytes counted as duplicates (the delivered copy is not
//     retained, so a content comparison is impossible there by design).
//   - Among buffered out-of-order segments, the copy that arrived first is
//     kept and later arrivals for the same range are dropped at insertion.
//     Both copies are in hand at that moment, so dropped bytes are split
//     byte-wise into DuplicateBytes (identical content) and ConflictBytes
//     (differing content — the signature of an evasion attempt, since a
//     well-behaved sender retransmits the same data).
//   - An in-order arrival is delivered immediately, even if a buffered
//     out-of-order copy of the same range exists; the buffered copy is
//     trimmed when the cursor passes it and counted as duplicate.
//
// Every stream keeps an Accounting ledger of these events; the
// conservation invariant
//
//	IngestBytes == DeliveredBytes + DuplicateBytes + ConflictBytes +
//	               DiscardedBytes + PendingBytes()
//
// holds after every Segment call (with PendingBytes() == 0 once the
// stream is closed or discarded), and the delivery cursor advances by
// exactly DeliveredBytes + GapSkippedBytes.
package reassembly

import (
	"bytes"
	"sort"
)

// Consumer receives the reassembled byte stream of one flow direction.
type Consumer interface {
	// Data delivers the next in-order chunk. The slice borrows either the
	// caller's segment buffer or a pooled reassembly buffer: it is valid
	// only until Data returns, mirroring the pcap layer's Retain contract.
	// A consumer that keeps the bytes must copy them.
	Data(b []byte)
	// Gap reports that n bytes were skipped (lost to capture or truncation)
	// before the following Data call.
	Gap(n int)
}

// DefaultMaxPending is the default buffered-bytes gap-skip threshold.
const DefaultMaxPending = 256 << 10

// Accounting is a Stream's hostile-input ledger. All byte counters are in
// payload bytes as fed to Segment; see the package comment for the
// conservation invariants tying them together.
type Accounting struct {
	// IngestBytes counts every payload byte fed to Segment while the
	// stream was open.
	IngestBytes int64
	// DeliveredBytes counts bytes handed to the consumer via Data.
	DeliveredBytes int64
	// DuplicateBytes counts overlap bytes dropped whose content matched
	// the kept copy, or that overlapped data no longer retained (behind
	// the delivery cursor, or trimmed while draining).
	DuplicateBytes int64
	// ConflictBytes counts overlap bytes dropped whose content differed
	// from the kept first copy — a retransmission that "changed its mind",
	// the classic reassembly-evasion signature.
	ConflictBytes int64
	// DiscardedBytes counts buffered bytes dropped by Discard without
	// delivery or gap accounting (the unparsed end-of-trace path).
	DiscardedBytes int64
	// GapSkippedBytes counts sequence space declared lost via Gap.
	GapSkippedBytes int64
	// GapEvents counts Gap callbacks.
	GapEvents int64
	// WrapEvents counts 32-bit sequence-number wraps of the delivery
	// cursor.
	WrapEvents int64
	// PeakPendingBytes is the high-water mark of buffered out-of-order
	// bytes observed after a Segment call returned (the gap-skip policy
	// has already run, so it never exceeds MaxPending).
	PeakPendingBytes int64
}

// Stream reassembles one direction of a TCP connection. The zero value is
// not ready to use; call NewStream, or Init for an embedded Stream.
type Stream struct {
	consumer Consumer
	next     uint32 // next expected sequence number
	started  bool
	// pending holds out-of-order segments sorted by sequence number,
	// pairwise non-overlapping, each backed by a pooled buffer.
	pending []segment
	// pendingBytes tracks buffered volume for the gap-skip policy. Because
	// insertion trims overlap, it counts distinct buffered bytes.
	pendingBytes int
	// MaxPending is the buffered-bytes threshold beyond which the stream
	// declares a gap and skips forward. Default 256 KB.
	MaxPending int
	closed     bool
	acct       Accounting
}

type segment struct {
	seq  uint32
	data []byte
}

// NewStream returns a stream delivering to consumer.
func NewStream(consumer Consumer) *Stream {
	s := &Stream{}
	s.Init(consumer)
	return s
}

// Init readies an embedded (or reused) Stream in place, equivalent to
// replacing it with NewStream's result.
func (s *Stream) Init(consumer Consumer) {
	*s = Stream{consumer: consumer, MaxPending: DefaultMaxPending}
}

// seqLess reports a < b in 32-bit sequence space.
func seqLess(a, b uint32) bool { return int32(a-b) < 0 }

// SetISN establishes the initial sequence number (the SYN's seq + 1).
// Calling it is optional; if not called, the first data segment's sequence
// number seeds the stream.
func (s *Stream) SetISN(seq uint32) {
	if !s.started {
		s.next = seq
		s.started = true
	}
}

// Segment feeds one TCP segment's payload at the given sequence number.
// data is borrowed for the duration of the call: in-order bytes are handed
// to the consumer as-is, out-of-order bytes are copied into pooled
// buffers, so the caller may recycle data as soon as Segment returns.
func (s *Stream) Segment(seq uint32, data []byte) {
	if s.closed || len(data) == 0 {
		return
	}
	s.acct.IngestBytes += int64(len(data))
	if !s.started {
		s.next = seq
		s.started = true
	}
	// Drop or trim data entirely in the past (retransmission). The
	// delivered copy is not retained, so these bytes count as duplicates
	// regardless of content.
	if seqLess(seq, s.next) {
		overlap := s.next - seq
		if uint32(len(data)) <= overlap {
			s.acct.DuplicateBytes += int64(len(data))
			return
		}
		s.acct.DuplicateBytes += int64(overlap)
		data = data[overlap:]
		seq = s.next
	}
	if seq == s.next {
		s.consumer.Data(data)
		s.acct.DeliveredBytes += int64(len(data))
		s.setNext(s.next + uint32(len(data)))
		s.drainPending()
		s.notePeak()
		return
	}
	s.insertPending(seq, data)
	// Skip forward until the buffer is back under budget: MaxPending is a
	// hard bound on buffered bytes, even when the pending data sits in
	// several disjoint clusters.
	for s.pendingBytes > s.MaxPending {
		s.skipToPending()
	}
	s.notePeak()
}

// setNext advances the delivery cursor, recording 32-bit wraps. Every
// advance is less than 2^31, so a wrap shows as the raw value decreasing.
func (s *Stream) setNext(v uint32) {
	if v < s.next {
		s.acct.WrapEvents++
	}
	s.next = v
}

func (s *Stream) notePeak() {
	if int64(s.pendingBytes) > s.acct.PeakPendingBytes {
		s.acct.PeakPendingBytes = int64(s.pendingBytes)
	}
}

// noteOverlap accounts for dropped overlap bytes where both the kept
// first copy and the dropped later copy are in hand: identical bytes are
// duplicates, differing bytes are conflicts. The slices are equal length.
func (s *Stream) noteOverlap(kept, dropped []byte) {
	if bytes.Equal(kept, dropped) {
		s.acct.DuplicateBytes += int64(len(dropped))
		return
	}
	for i := range dropped {
		if dropped[i] == kept[i] {
			s.acct.DuplicateBytes++
		} else {
			s.acct.ConflictBytes++
		}
	}
}

// insertPending buffers out-of-order data, trimming every byte already
// held by a neighboring pending segment (first copy wins). A segment
// spanning past an existing one is split around it, so the pending list
// stays sorted and pairwise non-overlapping.
func (s *Stream) insertPending(seq uint32, data []byte) {
	for len(data) > 0 {
		// Binary-search the insertion point: first pending segment at or
		// beyond seq.
		idx := sort.Search(len(s.pending), func(i int) bool {
			return !seqLess(s.pending[i].seq, seq)
		})
		// Trim the head against the predecessor's copy.
		if idx > 0 {
			prev := &s.pending[idx-1]
			prevEnd := prev.seq + uint32(len(prev.data))
			if seqLess(seq, prevEnd) {
				overlap := prevEnd - seq
				keptOff := len(prev.data) - int(overlap)
				if uint32(len(data)) <= overlap {
					s.noteOverlap(prev.data[keptOff:keptOff+len(data)], data)
					return
				}
				s.noteOverlap(prev.data[keptOff:], data[:overlap])
				data = data[overlap:]
				seq = prevEnd
			}
		}
		chunk := data
		if idx < len(s.pending) {
			nxt := &s.pending[idx]
			if nxt.seq == seq {
				// This span's prefix is already buffered; skip past it and
				// reconsider the remainder.
				covered := uint32(len(nxt.data))
				if uint32(len(chunk)) <= covered {
					s.noteOverlap(nxt.data[:len(chunk)], chunk)
					return
				}
				s.noteOverlap(nxt.data, data[:covered])
				data = data[covered:]
				seq += covered
				continue
			}
			if seqLess(nxt.seq, seq+uint32(len(chunk))) {
				// Truncate at the successor; the loop handles what spills
				// past it on the next iteration.
				chunk = chunk[:nxt.seq-seq]
			}
		}
		s.insertSegmentAt(idx, seq, chunk)
		data = data[len(chunk):]
		seq += uint32(len(chunk))
	}
}

// insertSegmentAt copies chunk into a pooled buffer and splices it into
// the pending list at idx.
func (s *Stream) insertSegmentAt(idx int, seq uint32, chunk []byte) {
	buf := GetBuffer(len(chunk))
	buf = append(buf, chunk...)
	s.pending = append(s.pending, segment{})
	copy(s.pending[idx+1:], s.pending[idx:])
	s.pending[idx] = segment{seq: seq, data: buf}
	s.pendingBytes += len(chunk)
}

func (s *Stream) drainPending() {
	for len(s.pending) > 0 {
		seg := s.pending[0]
		if seqLess(s.next, seg.seq) {
			return
		}
		s.pending[0] = segment{}
		s.pending = s.pending[1:]
		s.pendingBytes -= len(seg.data)
		data := seg.data
		if seqLess(seg.seq, s.next) {
			// The cursor already passed this buffered copy (a fresher
			// in-order arrival won); the trimmed bytes are duplicates.
			overlap := s.next - seg.seq
			if uint32(len(data)) <= overlap {
				s.acct.DuplicateBytes += int64(len(data))
				PutBuffer(seg.data)
				continue
			}
			s.acct.DuplicateBytes += int64(overlap)
			data = data[overlap:]
		}
		s.consumer.Data(data)
		s.acct.DeliveredBytes += int64(len(data))
		s.setNext(s.next + uint32(len(data)))
		PutBuffer(seg.data)
	}
}

// skipToPending declares the bytes between next and the earliest pending
// segment lost, reports the gap, and resumes from the buffer.
func (s *Stream) skipToPending() {
	if len(s.pending) == 0 {
		return
	}
	gap := s.pending[0].seq - s.next
	s.consumer.Gap(int(gap))
	s.acct.GapEvents++
	s.acct.GapSkippedBytes += int64(gap)
	s.setNext(s.pending[0].seq)
	s.drainPending()
}

// Close flushes any buffered segments (reporting gaps between them) and
// marks the stream finished. Used at FIN/RST or end of trace.
func (s *Stream) Close() {
	if s.closed {
		return
	}
	for len(s.pending) > 0 {
		s.skipToPending()
	}
	s.closed = true
}

// Discard drops buffered out-of-order data without delivering it,
// recycling the pooled segment buffers, and marks the stream finished.
// It is the end-of-trace path for streams the analysis never parses.
func (s *Stream) Discard() {
	s.acct.DiscardedBytes += int64(s.pendingBytes)
	for i := range s.pending {
		PutBuffer(s.pending[i].data)
		s.pending[i] = segment{}
	}
	s.pending = s.pending[:0]
	s.pendingBytes = 0
	s.closed = true
}

// PendingBytes reports how much distinct out-of-order data is buffered.
func (s *Stream) PendingBytes() int { return s.pendingBytes }

// Accounting returns a snapshot of the stream's hostile-input ledger.
func (s *Stream) Accounting() Accounting { return s.acct }

// NextSeq reports the sequence number of the next expected in-order byte.
// Meaningful only once Started.
func (s *Stream) NextSeq() uint32 { return s.next }

// Started reports whether the stream's sequence origin is established
// (via SetISN or the first data segment).
func (s *Stream) Started() bool { return s.started }

// BufferConsumer is a Consumer that accumulates the stream into memory,
// recording gap positions. It is the consumer used by most application
// analyzers in this repository. Buf's backing storage comes from the
// package buffer pool; call Release when the contents are dead so the
// next connection can reuse it.
type BufferConsumer struct {
	Buf     []byte
	Gaps    int
	GapByte int
	// Limit bounds growth; excess data is counted but discarded. Zero
	// means unlimited.
	Limit int
	// Overflow counts bytes dropped due to Limit.
	Overflow int
}

// Data implements Consumer, copying the borrowed chunk into Buf.
func (b *BufferConsumer) Data(d []byte) {
	if b.Limit > 0 && len(b.Buf)+len(d) > b.Limit {
		keep := b.Limit - len(b.Buf)
		if keep < 0 {
			keep = 0
		}
		b.Overflow += len(d) - keep
		d = d[:keep]
		if len(d) == 0 {
			return
		}
	}
	b.Buf = AppendPooled(b.Buf, d)
}

// Release recycles Buf's storage into the buffer pool. The consumer is
// reusable afterwards; any slice of Buf taken before Release is invalid.
func (b *BufferConsumer) Release() {
	PutBuffer(b.Buf)
	b.Buf = nil
}

// Gap implements Consumer.
func (b *BufferConsumer) Gap(n int) {
	b.Gaps++
	b.GapByte += n
}
