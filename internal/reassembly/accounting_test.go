package reassembly

import (
	"bytes"
	"testing"
)

// patByte is the position-determined content used by the accounting and
// fuzz tests: the byte at absolute sequence p is always patByte(p), so any
// mix of retransmissions carries consistent content and delivered bytes
// can be checked against position alone.
func patByte(p uint32) byte { return byte(p*131 + 7) }

func patData(seq uint32, n int) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = patByte(seq + uint32(i))
	}
	return d
}

// TestPendingBytesNotInflatedByOverlap is the regression test for the
// pending-buffer accounting: overlapping out-of-order retransmissions used
// to be buffered whole, counting shared bytes multiple times and tripping
// the gap-skip threshold long before MaxPending distinct bytes were
// actually missing-and-buffered.
func TestPendingBytesNotInflatedByOverlap(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.MaxPending = 500
	s.SetISN(0)
	// [100,600) is out of order while [0,100) is in flight. Feed it as
	// heavily overlapping windows: 350 distinct bytes, 850 raw bytes.
	s.Segment(100, patData(100, 200)) // [100,300)
	s.Segment(150, patData(150, 250)) // [150,400), 150 new
	s.Segment(120, patData(120, 280)) // [120,400), fully covered
	s.Segment(330, patData(330, 120)) // [330,450), 50 new
	if got := s.PendingBytes(); got != 350 {
		t.Errorf("PendingBytes = %d, want 350 (distinct bytes only)", got)
	}
	if c.Gaps != 0 {
		t.Fatalf("gap declared with only 350 distinct bytes pending (threshold 500)")
	}
	// Crossing the threshold with genuinely new bytes must still skip.
	s.Segment(450, patData(450, 200)) // [450,650): 550 distinct > 500
	if c.Gaps != 1 || c.GapByte != 100 {
		t.Fatalf("gaps=%d gapbytes=%d, want 1 gap of 100", c.Gaps, c.GapByte)
	}
	if !bytes.Equal(c.Buf, patData(100, 550)) {
		t.Errorf("delivered bytes corrupted after overlap trimming")
	}
	if s.PendingBytes() != 0 {
		t.Errorf("PendingBytes = %d after drain", s.PendingBytes())
	}
}

// TestHeavyRetransmitKeepsStreamIntact drives many duplicated, shifted
// windows over the same region and checks both the reconstruction and
// that the accounting returns to zero.
func TestHeavyRetransmitKeepsStreamIntact(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.MaxPending = 1 << 20
	s.SetISN(0)
	const total = 4096
	// Hold back [0,64) so everything else is pending, then spray windows.
	for off := uint32(64); off < total; off += 48 {
		n := 96
		if off+uint32(n) > total {
			n = int(total - off)
		}
		s.Segment(off, patData(off, n))
		s.Segment(off, patData(off, n)) // exact duplicate
	}
	if got, want := s.PendingBytes(), total-64; got != want {
		t.Errorf("PendingBytes = %d, want %d", got, want)
	}
	s.Segment(0, patData(0, 64))
	if s.PendingBytes() != 0 {
		t.Errorf("PendingBytes = %d after drain", s.PendingBytes())
	}
	if c.Gaps != 0 {
		t.Errorf("gaps = %d", c.Gaps)
	}
	if !bytes.Equal(c.Buf, patData(0, total)) {
		t.Errorf("stream not reconstructed byte-identically")
	}
}

// TestSpanningSegmentSplitsAroundExisting pins the split behaviour: a
// segment spanning an existing pending segment keeps the first copy of the
// shared range and buffers both non-overlapping remainders.
func TestSpanningSegmentSplitsAroundExisting(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.SetISN(0)
	s.Segment(20, patData(20, 10)) // [20,30)
	s.Segment(10, patData(10, 30)) // [10,40) spans it
	if got := s.PendingBytes(); got != 30 {
		t.Errorf("PendingBytes = %d, want 30", got)
	}
	s.Segment(0, patData(0, 10))
	if !bytes.Equal(c.Buf, patData(0, 40)) {
		t.Errorf("buf = %x", c.Buf)
	}
	if c.Gaps != 0 {
		t.Errorf("gaps = %d", c.Gaps)
	}
}

// checkConservation asserts the package-level ledger invariant on a
// stream at any point in its life.
func checkConservation(t *testing.T, s *Stream) {
	t.Helper()
	a := s.Accounting()
	if got := a.DeliveredBytes + a.DuplicateBytes + a.ConflictBytes + a.DiscardedBytes + int64(s.PendingBytes()); got != a.IngestBytes {
		t.Fatalf("conservation broken: ingest %d, accounted %d (%+v)", a.IngestBytes, got, a)
	}
}

// TestConflictingOverlapSplitsLedger pins the duplicate/conflict split:
// a second buffered copy of a range with differing content counts its
// differing bytes as conflicts, identical bytes as duplicates, and the
// first copy's content is what gets delivered.
func TestConflictingOverlapSplitsLedger(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.SetISN(0)
	s.Segment(100, patData(100, 50)) // first copy of [100,150)
	evil := patData(100, 50)
	for i := 10; i < 30; i++ { // corrupt 20 bytes in the middle
		evil[i] ^= 0xFF
	}
	s.Segment(100, evil) // conflicting retransmission, fully covered
	a := s.Accounting()
	if a.ConflictBytes != 20 || a.DuplicateBytes != 30 {
		t.Fatalf("conflict=%d dup=%d, want 20/30", a.ConflictBytes, a.DuplicateBytes)
	}
	checkConservation(t, s)
	s.Segment(0, patData(0, 100)) // fill the hole; first copy must win
	if !bytes.Equal(c.Buf, patData(0, 150)) {
		t.Errorf("delivered bytes are not the first copy")
	}
	// Overlap behind the delivery cursor counts as duplicate regardless
	// of content: the delivered copy is gone, no comparison is possible.
	s.Segment(120, evil[20:]) // [120,150), all behind cursor, conflicting content
	a = s.Accounting()
	if a.ConflictBytes != 20 {
		t.Errorf("conflict=%d changed by past-overlap", a.ConflictBytes)
	}
	if a.DuplicateBytes != 30+30 {
		t.Errorf("dup=%d, want 60", a.DuplicateBytes)
	}
	checkConservation(t, s)
}

// TestSequenceWrapCounted drives a stream across the 32-bit sequence
// boundary, in order and via a gap skip, and checks WrapEvents.
func TestSequenceWrapCounted(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	isn := uint32(0xFFFFFFF0)
	s.SetISN(isn)
	s.Segment(isn, patData(isn, 64)) // crosses zero in-order
	if a := s.Accounting(); a.WrapEvents != 1 {
		t.Fatalf("WrapEvents = %d after in-order wrap, want 1", a.WrapEvents)
	}
	if !bytes.Equal(c.Buf, patData(isn, 64)) {
		t.Errorf("delivered bytes wrong across wrap")
	}
	// Second stream: the wrap happens inside a gap skip.
	var c2 BufferConsumer
	s2 := NewStream(&c2)
	s2.MaxPending = 128
	s2.SetISN(isn)
	post := isn + 200 // wrapped target
	s2.Segment(post, patData(post, 192))
	if a := s2.Accounting(); a.WrapEvents != 1 || a.GapEvents != 1 || a.GapSkippedBytes != 200 {
		t.Fatalf("ledger %+v, want wrap=1 gap=1 skipped=200", a)
	}
	checkConservation(t, s2)
}

// TestDiscardLedger checks that Discard accounts dropped pending bytes so
// conservation holds on the unparsed end-of-trace path.
func TestDiscardLedger(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.SetISN(0)
	s.Segment(0, patData(0, 10))
	s.Segment(100, patData(100, 50))
	s.Segment(300, patData(300, 50))
	s.Discard()
	a := s.Accounting()
	if a.DiscardedBytes != 100 || a.DeliveredBytes != 10 {
		t.Fatalf("ledger %+v, want discarded=100 delivered=10", a)
	}
	checkConservation(t, s)
}

// TestDiscardRecyclesWithoutDelivery checks the end-of-trace path for
// unparsed streams: nothing is delivered, accounting zeroes, stream closes.
func TestDiscardRecyclesWithoutDelivery(t *testing.T) {
	var c BufferConsumer
	s := NewStream(&c)
	s.SetISN(0)
	s.Segment(100, patData(100, 50))
	s.Segment(300, patData(300, 50))
	s.Discard()
	if len(c.Buf) != 0 || c.Gaps != 0 {
		t.Errorf("Discard delivered data (buf=%d gaps=%d)", len(c.Buf), c.Gaps)
	}
	if s.PendingBytes() != 0 {
		t.Errorf("PendingBytes = %d", s.PendingBytes())
	}
	s.Segment(0, patData(0, 10))
	if len(c.Buf) != 0 {
		t.Error("segment accepted after Discard")
	}
}
