// Package enterprise models the measured network: the LBNL-like site with
// two central routers, 18–22 subnets per dataset, thousands of internal
// hosts, designated application servers, remote (WAN) peers, and the
// paper's piecemeal tap-rotation methodology (each trace covers one subnet
// for the dataset's duration, seeing traffic to and from that subnet but
// not traffic that stays inside it).
//
// The five Config presets D0–D4 mirror Table 1: capture dates, durations,
// per-tap counts, subnet counts, and snap lengths, plus the vantage
// differences the paper repeatedly leans on — D0–D2 monitor the subnets
// holding the main SMTP/IMAP and user-authentication servers, while D3–D4
// monitor the subnets holding the main DNS and print servers instead.
//
// Everything here is static topology shared by the generator and the
// analyzer; it carries no analysis state and so no Snapshot/Reset
// obligations. DESIGN.md § "System inventory" maps these types to the
// rest of the system.
package enterprise

import (
	"fmt"
	"net/netip"
	"time"

	"enttrace/internal/layers"
)

// Host is one addressable endpoint.
type Host struct {
	Addr   netip.Addr
	MAC    layers.MAC
	Subnet int // -1 for remote hosts
	Remote bool
}

// Role names for well-known servers.
const (
	RoleSMTP    = "smtp"
	RoleIMAP    = "imap"
	RoleDNS1    = "dns1"
	RoleDNS2    = "dns2"
	RoleNBNS1   = "nbns1"
	RoleNBNS2   = "nbns2"
	RoleWeb     = "web"
	RoleNFS     = "nfs"
	RoleNCP     = "ncp"
	RoleAuth    = "auth"  // NetLogon/LsaRPC domain controller
	RolePrint   = "print" // Spoolss print server
	RoleBackupV = "veritas"
	RoleBackupD = "dantz"
	RoleFTP     = "ftp"
	RoleEPM     = "epm"
)

// Well-known subnet indexes for server placement. The monitored-subnet
// lists in the D0–D4 configs are chosen around these to reproduce the
// paper's vantage effects.
const (
	SubnetMail  = 0  // main SMTP + IMAP servers (monitored in D0–D2)
	SubnetAuth  = 1  // domain controller (monitored in D0–D2)
	SubnetDNS   = 30 // main DNS + Netbios/NS servers (monitored in D3–D4)
	SubnetPrint = 31 // print server (monitored in D3–D4)
)

// Config describes one dataset's capture campaign.
type Config struct {
	Name     string
	Date     time.Time
	Duration time.Duration // per-trace duration
	PerTap   int           // traces per monitored subnet
	Snaplen  uint32
	// Monitored lists the subnet indexes traced, in rotation order.
	Monitored []int
	// HostsPerSubnet is the number of client hosts in each subnet.
	HostsPerSubnet int
	// Scale multiplies workload volume (sessions per trace). 1.0 is the
	// default laptop-scale reproduction (≈10⁵ packets per dataset).
	Scale float64
	// Seed drives all randomness; datasets are fully deterministic.
	Seed int64
	// IMAPSecure reflects the D0→D1 policy change from IMAP4 to IMAP/S.
	IMAPSecure bool
}

func dsDate(s string) time.Time {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		panic(err)
	}
	return t.UTC()
}

func monitoredRange(lo, hi int, extra ...int) []int {
	var out []int
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return append(out, extra...)
}

// D0 is the 10-minute full-packet dataset (2004-10-04).
func D0() Config {
	return Config{
		Name: "D0", Date: dsDate("2004-10-04"),
		Duration: 10 * time.Minute, PerTap: 1, Snaplen: 1500,
		Monitored:      monitoredRange(0, 21), // includes mail+auth subnets
		HostsPerSubnet: 110,
		Scale:          1.0,
		Seed:           40,
		IMAPSecure:     false,
	}
}

// D1 is the first 1-hour header-only dataset (2004-12-15), two traces per
// tap.
func D1() Config {
	return Config{
		Name: "D1", Date: dsDate("2004-12-15"),
		Duration: time.Hour, PerTap: 2, Snaplen: 68,
		Monitored:      monitoredRange(0, 21),
		HostsPerSubnet: 95,
		Scale:          1.0,
		Seed:           41,
		IMAPSecure:     true,
	}
}

// D2 is the second 1-hour header-only dataset (2004-12-16).
func D2() Config {
	return Config{
		Name: "D2", Date: dsDate("2004-12-16"),
		Duration: time.Hour, PerTap: 1, Snaplen: 68,
		Monitored:      monitoredRange(0, 21),
		HostsPerSubnet: 95,
		Scale:          1.0,
		Seed:           42,
		IMAPSecure:     true,
	}
}

// D3 is the first full-packet 1-hour dataset (2005-01-06): 18 subnets
// including the DNS and print-server subnets, excluding mail and auth.
func D3() Config {
	return Config{
		Name: "D3", Date: dsDate("2005-01-06"),
		Duration: time.Hour, PerTap: 1, Snaplen: 1500,
		Monitored:      monitoredRange(2, 17, SubnetDNS, SubnetPrint),
		HostsPerSubnet: 87,
		Scale:          1.0,
		Seed:           43,
		IMAPSecure:     true,
	}
}

// D4 is the second full-packet 1-hour dataset (2005-01-07).
func D4() Config {
	return Config{
		Name: "D4", Date: dsDate("2005-01-07"),
		Duration: time.Hour, PerTap: 1, Snaplen: 1500,
		Monitored:      monitoredRange(2, 17, SubnetDNS, SubnetPrint),
		HostsPerSubnet: 87,
		Scale:          1.0,
		Seed:           44,
		IMAPSecure:     true,
	}
}

// AllDatasets returns D0–D4 in order.
func AllDatasets() []Config {
	return []Config{D0(), D1(), D2(), D3(), D4()}
}

// Network instantiates the address plan for a Config.
type Network struct {
	cfg     Config
	clients map[int][]Host // subnet → client hosts
	servers map[string]Host
}

// EnterprisePrefix is the site's address block.
var EnterprisePrefix = netip.MustParsePrefix("128.3.0.0/16")

// NewNetwork builds the host plan for a dataset.
func NewNetwork(cfg Config) *Network {
	n := &Network{cfg: cfg, clients: make(map[int][]Host), servers: make(map[string]Host)}
	allSubnets := append(append([]int{}, cfg.Monitored...), SubnetMail, SubnetAuth, SubnetDNS, SubnetPrint)
	seen := make(map[int]bool)
	for _, s := range allSubnets {
		if seen[s] {
			continue
		}
		seen[s] = true
		for h := 0; h < cfg.HostsPerSubnet; h++ {
			n.clients[s] = append(n.clients[s], makeHost(s, 10+h))
		}
	}
	// Servers get low host numbers in their home subnets.
	place := func(role string, subnet, hostNum int) {
		n.servers[role] = makeHost(subnet, hostNum)
	}
	place(RoleSMTP, SubnetMail, 2)
	place(RoleIMAP, SubnetMail, 3)
	place(RoleAuth, SubnetAuth, 2)
	place(RoleEPM, SubnetAuth, 2) // EPM lives on the DC
	place(RoleDNS1, SubnetDNS, 2)
	place(RoleDNS2, SubnetDNS, 3)
	place(RoleNBNS1, SubnetDNS, 4)
	place(RoleNBNS2, SubnetDNS, 5)
	place(RolePrint, SubnetPrint, 2)
	// Generic servers spread over ordinary subnets.
	place(RoleWeb, 5, 2)
	place(RoleNFS, 6, 2)
	place(RoleNCP, 7, 2)
	place(RoleBackupV, 8, 2)
	place(RoleBackupD, 9, 2)
	place(RoleFTP, 10, 2)
	return n
}

func makeHost(subnet, num int) Host {
	addr := netip.AddrFrom4([4]byte{128, 3, byte(subnet), byte(num)})
	return Host{
		Addr:   addr,
		MAC:    layers.MAC{0x00, 0x0d, 0x93, byte(subnet), byte(num >> 8), byte(num)},
		Subnet: subnet,
	}
}

// Config returns the dataset configuration.
func (n *Network) Config() Config { return n.cfg }

// Clients returns the client hosts of a subnet.
func (n *Network) Clients(subnet int) []Host { return n.clients[subnet] }

// Server returns the host playing a role.
func (n *Network) Server(role string) Host {
	h, ok := n.servers[role]
	if !ok {
		panic(fmt.Sprintf("enterprise: unknown role %q", role))
	}
	return h
}

// ServerSubnet reports which subnet a role's server lives in.
func (n *Network) ServerSubnet(role string) int { return n.Server(role).Subnet }

// InternalHost fabricates an enterprise host by subnet and host number,
// for traffic whose far endpoint lies in an unmonitored subnet.
func InternalHost(subnet, num int) Host { return makeHost(subnet, num) }

// KnownScanners returns the site's two internal vulnerability scanners,
// which the paper removes by name rather than by heuristic.
func KnownScanners() []netip.Addr {
	return []netip.Addr{
		InternalHost(20, 4).Addr,
		InternalHost(21, 4).Addr,
	}
}

// RemoteHost deterministically fabricates the i-th WAN host.
func RemoteHost(i int) Host {
	// Spread across several plausible external /16s.
	blocks := [][2]byte{{131, 243}, {198, 128}, {64, 233}, {171, 64}, {18, 7}, {204, 99}}
	b := blocks[i%len(blocks)]
	return Host{
		Addr:   netip.AddrFrom4([4]byte{b[0], b[1], byte(i / 250 % 250), byte(2 + i%250)}),
		MAC:    layers.MAC{0x00, 0x30, 0x48, 0xff, byte(i >> 8), byte(i)}, // the border router's MAC in practice
		Subnet: -1,
		Remote: true,
	}
}

// IsLocal reports whether an address is inside the enterprise.
func IsLocal(a netip.Addr) bool { return EnterprisePrefix.Contains(a) }

// SubnetOf returns the subnet index of a local address, or -1.
func SubnetOf(a netip.Addr) int {
	if !IsLocal(a) {
		return -1
	}
	return int(a.As4()[2])
}

// SubnetPrefix returns the /24 prefix of a subnet.
func SubnetPrefix(subnet int) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{128, 3, byte(subnet), 0}), 24)
}
