package enterprise

import (
	"net/netip"
	"testing"
)

func TestDatasetPresetsMatchTable1(t *testing.T) {
	cases := []struct {
		cfg      Config
		duration string
		perTap   int
		subnets  int
		snaplen  uint32
	}{
		{D0(), "10m0s", 1, 22, 1500},
		{D1(), "1h0m0s", 2, 22, 68},
		{D2(), "1h0m0s", 1, 22, 68},
		{D3(), "1h0m0s", 1, 18, 1500},
		{D4(), "1h0m0s", 1, 18, 1500},
	}
	for _, c := range cases {
		if got := c.cfg.Duration.String(); got != c.duration {
			t.Errorf("%s duration = %s, want %s", c.cfg.Name, got, c.duration)
		}
		if c.cfg.PerTap != c.perTap {
			t.Errorf("%s perTap = %d", c.cfg.Name, c.cfg.PerTap)
		}
		if len(c.cfg.Monitored) != c.subnets {
			t.Errorf("%s subnets = %d, want %d", c.cfg.Name, len(c.cfg.Monitored), c.subnets)
		}
		if c.cfg.Snaplen != c.snaplen {
			t.Errorf("%s snaplen = %d", c.cfg.Name, c.cfg.Snaplen)
		}
	}
}

func TestVantageDifferences(t *testing.T) {
	contains := func(cfg Config, subnet int) bool {
		for _, s := range cfg.Monitored {
			if s == subnet {
				return true
			}
		}
		return false
	}
	for _, cfg := range []Config{D0(), D1(), D2()} {
		if !contains(cfg, SubnetMail) || !contains(cfg, SubnetAuth) {
			t.Errorf("%s should monitor mail and auth subnets", cfg.Name)
		}
		if contains(cfg, SubnetDNS) || contains(cfg, SubnetPrint) {
			t.Errorf("%s should not monitor DNS/print subnets", cfg.Name)
		}
	}
	for _, cfg := range []Config{D3(), D4()} {
		if contains(cfg, SubnetMail) || contains(cfg, SubnetAuth) {
			t.Errorf("%s should not monitor mail/auth subnets", cfg.Name)
		}
		if !contains(cfg, SubnetDNS) || !contains(cfg, SubnetPrint) {
			t.Errorf("%s should monitor DNS and print subnets", cfg.Name)
		}
	}
}

func TestIMAPPolicyChange(t *testing.T) {
	if D0().IMAPSecure {
		t.Error("D0 predates the IMAP/S policy")
	}
	for _, cfg := range []Config{D1(), D2(), D3(), D4()} {
		if !cfg.IMAPSecure {
			t.Errorf("%s should use IMAP/S", cfg.Name)
		}
	}
}

func TestNetworkHostPlan(t *testing.T) {
	n := NewNetwork(D0())
	c := n.Clients(0)
	if len(c) != D0().HostsPerSubnet {
		t.Fatalf("subnet 0 has %d clients", len(c))
	}
	seen := make(map[netip.Addr]bool)
	for _, h := range c {
		if seen[h.Addr] {
			t.Fatalf("duplicate address %v", h.Addr)
		}
		seen[h.Addr] = true
		if SubnetOf(h.Addr) != 0 {
			t.Errorf("host %v not in subnet 0", h.Addr)
		}
		if !IsLocal(h.Addr) {
			t.Errorf("client %v not local", h.Addr)
		}
	}
}

func TestServersDistinct(t *testing.T) {
	n := NewNetwork(D3())
	roles := []string{RoleSMTP, RoleIMAP, RoleDNS1, RoleDNS2, RoleNBNS1, RoleNBNS2, RoleWeb, RoleNFS, RoleNCP, RoleAuth, RolePrint, RoleBackupV, RoleBackupD, RoleFTP}
	seen := make(map[netip.Addr]string)
	for _, r := range roles {
		h := n.Server(r)
		if prev, dup := seen[h.Addr]; dup && prev != r {
			// EPM intentionally shares the DC.
			if !(r == RoleEPM || prev == RoleEPM) {
				t.Errorf("roles %s and %s share %v", prev, r, h.Addr)
			}
		}
		seen[h.Addr] = r
		if !IsLocal(h.Addr) {
			t.Errorf("server %s not local", r)
		}
	}
	if n.ServerSubnet(RoleSMTP) != SubnetMail || n.ServerSubnet(RolePrint) != SubnetPrint {
		t.Error("server placement wrong")
	}
}

func TestUnknownRolePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown role should panic")
		}
	}()
	NewNetwork(D0()).Server("nonexistent")
}

func TestRemoteHosts(t *testing.T) {
	seen := make(map[netip.Addr]bool)
	for i := 0; i < 1000; i++ {
		h := RemoteHost(i)
		if IsLocal(h.Addr) {
			t.Fatalf("remote host %v is local", h.Addr)
		}
		if !h.Remote || h.Subnet != -1 {
			t.Fatalf("remote host fields: %+v", h)
		}
		seen[h.Addr] = true
	}
	if len(seen) < 900 {
		t.Errorf("only %d distinct remote hosts in 1000", len(seen))
	}
	// Determinism.
	if RemoteHost(5) != RemoteHost(5) {
		t.Error("remote hosts must be deterministic")
	}
}

func TestSubnetHelpers(t *testing.T) {
	a := netip.MustParseAddr("128.3.7.22")
	if SubnetOf(a) != 7 {
		t.Errorf("SubnetOf = %d", SubnetOf(a))
	}
	if SubnetOf(netip.MustParseAddr("8.8.8.8")) != -1 {
		t.Error("remote subnet should be -1")
	}
	if !SubnetPrefix(7).Contains(a) {
		t.Error("prefix mismatch")
	}
}
