module enttrace

go 1.24
