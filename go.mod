module enttrace

go 1.23
