#!/usr/bin/env bash
# Fleet-smoke gate: the two-tier fleet mode end to end, under the race
# detector, with a mid-run site crash. An aggregator and two shipper
# sites analyze a four-subnet D3 split (two pcaps per site); site-b is
# SIGKILLed mid-stall after partial delivery, /healthz must degrade and
# name it stale, a restart must complete the fleet, and the drained
# aggregator's stdout report must be byte-identical to a single
# instance analyzing all four traces — the fleet fold invariant, over
# the real wire.
set -euo pipefail
cd "$(dirname "$0")/.."

AGG_ADDR=127.0.0.1:17871
HTTP_ADDR=127.0.0.1:17872
ORIGIN=2005-01-06T00:00:00Z

work="$(mktemp -d)"
agg_pid='' site_pid=''
cleanup() {
  [ -n "$site_pid" ] && kill -9 "$site_pid" 2>/dev/null || true
  [ -n "$agg_pid" ] && kill -9 "$agg_pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- aggregator log ---" >&2
  cat "$work/agg.log" >&2 || true
  echo "--- site-b crash-run log ---" >&2
  cat "$work/sb1.log" >&2 || true
  exit 1
}

healthz() { curl -fsS "http://$HTTP_ADDR/healthz" 2>/dev/null | tr -d ' \n' || true; }

echo "== build (race) and generate the split dataset"
go build -race -o "$work/entanalyze" ./cmd/entanalyze
go run ./cmd/entgen -dataset D3 -scale 0.1 -subnets 4 -out "$work/traces"
A1="$work/traces/D3-subnet02-tap0.pcap" A2="$work/traces/D3-subnet03-tap0.pcap"
B1="$work/traces/D3-subnet04-tap0.pcap" B2="$work/traces/D3-subnet05-tap0.pcap"

echo "== single-instance golden over all four traces"
"$work/entanalyze" -window 60s -window-origin "$ORIGIN" -format json \
  "$A1" "$A2" "$B1" "$B2" >"$work/single.json" 2>/dev/null

echo "== aggregator up, expecting site-a and site-b"
"$work/entanalyze" -aggregate "$AGG_ADDR" -expect-sites site-a,site-b \
  -serve "$HTTP_ADDR" -stale-after 2s -format json \
  >"$work/fleet.json" 2>"$work/agg.log" &
agg_pid=$!
sleep 1

echo "== site-a ships cleanly; site-b stalls in its second trace"
"$work/entanalyze" -ship "$AGG_ADDR" -site site-a -window 60s \
  -window-origin "$ORIGIN" -trace-base 0 "$A1" "$A2" \
  >/dev/null 2>"$work/sa.log" &
# The per-source stall pauses site-b 20s into each trace's 100th packet:
# its first trace completes (windows ship), then the second trace parks
# inside the stall — a wide, deterministic window to kill it in.
"$work/entanalyze" -ship "$AGG_ADDR" -site site-b -window 60s \
  -window-origin "$ORIGIN" -trace-base 2 -inject 'stall@100:20s' "$B1" "$B2" \
  >/dev/null 2>"$work/sb1.log" &
site_pid=$!

delivered=''
for _ in $(seq 1 400); do
  h="$(healthz)"
  case "$h" in *'"Site":"site-b","Connected":true,"Fin":false,"Windows":'[1-9]*) delivered=yes; break ;; esac
  sleep 0.2
done
[ -n "$delivered" ] || fail "site-b never delivered a window ($h)"

echo "== SIGKILL site-b mid-run"
kill -9 "$site_pid"
site_pid=''

stale=''
for _ in $(seq 1 100); do
  h="$(healthz)"
  case "$h" in *'"Status":"degraded"'*'"StaleSites":["site-b"]'*) stale=yes; break ;; esac
  sleep 0.2
done
[ -n "$stale" ] || fail "healthz never degraded naming the dead site ($h)"
echo "   degraded: $h"

echo "== restart site-b; the fleet must complete"
"$work/entanalyze" -ship "$AGG_ADDR" -site site-b -window 60s \
  -window-origin "$ORIGIN" -trace-base 2 "$B1" "$B2" \
  >/dev/null 2>"$work/sb2.log"

final=''
for _ in $(seq 1 100); do
  h="$(healthz)"
  case "$h" in *'"Status":"ok"'*'"FinalReady":true'*) final=yes; break ;; esac
  sleep 0.2
done
[ -n "$final" ] || fail "fleet never became final after the restart ($h)"
curl -fsS "http://$HTTP_ADDR/report/final" >/dev/null || fail "/report/final unavailable on a complete fleet"

echo "== drain the aggregator and compare to the golden"
kill -TERM "$agg_pid"
wait "$agg_pid" || fail "aggregator drain exited nonzero"
agg_pid=''
grep -q 'signal: draining' "$work/agg.log" || fail "drain line missing from the aggregator log"
cmp "$work/single.json" "$work/fleet.json" ||
  fail "fleet report differs from the single-instance golden"

echo "PASS: fleet-of-2 with a mid-run crash drained byte-identical to the single instance"
