#!/usr/bin/env bash
# Doc-drift gate: every flag that README.md / DESIGN.md / EXPERIMENTS.md
# show on an ent* command line must actually be accepted by one of the
# four binaries. Catches examples that outlive a flag rename or removal.
set -euo pipefail
cd "$(dirname "$0")/.."

valid="$(mktemp)"
trap 'rm -f "$valid"' EXIT
for cmd in entanalyze entgen entreport entbench; do
  # -h exits non-zero by flag-package convention; the usage text is what
  # we are after.
  go run "./cmd/$cmd" -h 2>&1 | sed -n 's/^  -\([a-zA-Z0-9_-]*\).*/\1/p' || true
done >"$valid"
# go-test flags that legitimately appear in the docs' benchmark recipes.
printf '%s\n' bench benchmem benchtime count cpu fuzz fuzztime race run short v >>"$valid"
sort -u -o "$valid" "$valid"

fail=0
for doc in README.md DESIGN.md EXPERIMENTS.md; do
  while read -r flag; do
    if ! grep -qx "$flag" "$valid"; then
      echo "$doc: flag -$flag is not accepted by any ent* binary" >&2
      fail=1
    fi
  done < <(grep -oE '\bent(analyze|gen|report|bench)[^|#`]*' "$doc" |
    grep -oE ' -[a-zA-Z][a-zA-Z0-9_-]*' | sed 's/^ -//' | sort -u)
done

# The resilience- and scaling-flag families appear in DESIGN.md's
# code blocks on lines that are not full ent* command lines (policy
# tables, healthz transcripts, bench recipes), so the command-line pass
# above misses them. Scan every fenced block for these families
# explicitly, so a rename of any of the flags cannot leave stale prose
# behind.
while read -r flag; do
  if ! grep -qx "$flag" "$valid"; then
    echo "DESIGN.md code block: flag -$flag is not accepted by any ent* binary" >&2
    fail=1
  fi
done < <(awk '/^```/ { inblk = !inblk; next } inblk' DESIGN.md |
  grep -oE '(^| )-(inject|on-error|max-conns|idle-evict|mmap|cpus)\b' |
  sed 's/^ *-//' | sort -u)

if [ "$fail" -ne 0 ]; then
  echo "doc-drift check failed: fix the examples or the flag surface" >&2
fi
exit "$fail"
