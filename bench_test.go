// Benchmark harness: one benchmark per table and figure of the paper.
// Each benchmark measures the analysis computation that regenerates its
// experiment — the full pipeline over a pre-generated dataset — and then
// asserts the result is present, so `go test -bench .` both times and
// sanity-checks every reproduction target. Packet generation is cached
// per dataset (it is the workload input, not the system under test).
package enttrace_test

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"enttrace/internal/categories"
	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/flows"
	"enttrace/internal/gen"
	"enttrace/internal/layers"
	"enttrace/internal/scan"
)

// benchScale keeps bench datasets small enough for tight iteration while
// preserving every traffic class.
const benchScale = 0.15

// Endpoints for registry-lookup benchmarks (well-known classification is
// host-independent; the signature carries hosts for dynamic scoping).
var (
	benchAddrA = netip.AddrFrom4([4]byte{128, 3, 2, 10})
	benchAddrB = netip.AddrFrom4([4]byte{128, 3, 7, 5})
)

var (
	dsCache   = map[string]*gen.Dataset{}
	dsCacheMu sync.Mutex
)

func dataset(b *testing.B, name string, subnets int) *gen.Dataset {
	b.Helper()
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	key := name
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	var cfg enterprise.Config
	for _, c := range enterprise.AllDatasets() {
		if c.Name == name {
			cfg = c
		}
	}
	if cfg.Name == "" {
		b.Fatalf("unknown dataset %s", name)
	}
	cfg.Scale = benchScale
	// Keep the vantage subnets (tail of the list holds DNS/print for
	// D3-D4) plus a few client subnets.
	if subnets < len(cfg.Monitored) {
		head := cfg.Monitored[:subnets-2]
		tail := cfg.Monitored[len(cfg.Monitored)-2:]
		cfg.Monitored = append(append([]int{}, head...), tail...)
	}
	cfg.PerTap = 1
	ds := gen.GenerateDataset(cfg)
	dsCache[key] = ds
	return ds
}

// analyze runs the full pipeline; this is the measured unit for every
// table/figure benchmark. AddTrace feeds the sharded streaming pipeline
// (Workers 0 = GOMAXPROCS); determinism_test.go pins down that the
// worker count cannot change any number these benchmarks assert on.
func analyze(b *testing.B, ds *gen.Dataset) *core.Report {
	b.Helper()
	a := core.NewAnalyzer(core.Options{
		Dataset:         ds.Config.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: ds.Config.Snaplen >= 1500,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(core.TraceInput{
			Name:      tr.Prefix.String(),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			b.Fatal(err)
		}
	}
	return a.Report()
}

func benchPackets(ds *gen.Dataset) int64 {
	var n int64
	for _, tr := range ds.Traces {
		n += int64(len(tr.Packets))
	}
	return n
}

// run is the common shape of the per-experiment benchmarks: time the
// pipeline, then verify the experiment's output exists.
func run(b *testing.B, dsName string, check func(b *testing.B, r *core.Report)) {
	ds := dataset(b, dsName, 6)
	b.ResetTimer()
	var r *core.Report
	for i := 0; i < b.N; i++ {
		r = analyze(b, ds)
	}
	b.StopTimer()
	b.ReportMetric(float64(benchPackets(ds)), "packets")
	check(b, r)
}

func BenchmarkTable1_DatasetCharacteristics(b *testing.B) {
	run(b, "D0", func(b *testing.B, r *core.Report) {
		if r.Table1.Packets == 0 || r.Table1.MonitoredHosts == 0 {
			b.Fatalf("table 1 empty: %+v", r.Table1)
		}
	})
}

func BenchmarkTable2_NetworkLayerBreakdown(b *testing.B) {
	run(b, "D0", func(b *testing.B, r *core.Report) {
		if r.Table2["IP"] < 0.9 {
			b.Fatalf("IP fraction %v", r.Table2["IP"])
		}
	})
}

func BenchmarkTable3_TransportBreakdown(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.Table3.BytesFrac["TCP"] < 0.5 || r.Table3.ConnsFrac["UDP"] < 0.5 {
			b.Fatalf("transport mix: %+v", r.Table3)
		}
	})
}

func BenchmarkTable4_CategoryRegistry(b *testing.B) {
	// Table 4 is the classification registry itself; measure lookups.
	reg := categories.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, cat := reg.Classify(layers.ProtoTCP, benchAddrA, benchAddrB, 40000, 445); cat != categories.Windows {
			b.Fatal("classification broken")
		}
	}
}

func BenchmarkFigure1_CategoryBreakdown(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		var name core.CategoryRow
		for _, row := range r.Figure1 {
			if row.Category == "name" {
				name = row
			}
		}
		if name.ConnsTotal() < 0.3 {
			b.Fatalf("name category share %v", name.ConnsTotal())
		}
	})
}

func BenchmarkFigure2_FanInOut(b *testing.B) {
	run(b, "D2", func(b *testing.B, r *core.Report) {
		if r.Figure2.Hosts == 0 || len(r.Figure2.FanOutEnt) == 0 {
			b.Fatal("fan report empty")
		}
	})
}

func BenchmarkTable5_Findings(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if len(r.Findings) < 4 {
			b.Fatalf("findings: %v", r.Findings)
		}
	})
}

func BenchmarkTable6_AutomatedHTTP(b *testing.B) {
	run(b, "D4", func(b *testing.B, r *core.Report) {
		if len(r.HTTP.Automated) == 0 {
			b.Fatal("no automated clients measured")
		}
	})
}

func BenchmarkFigure3_HTTPFanOut(b *testing.B) {
	run(b, "D4", func(b *testing.B, r *core.Report) {
		if r.HTTP.NWanClients == 0 {
			b.Fatal("no WAN web clients")
		}
	})
}

func BenchmarkTable7_HTTPContentTypes(b *testing.B) {
	run(b, "D4", func(b *testing.B, r *core.Report) {
		if r.HTTP.ContentReqWan["image"] == 0 {
			b.Fatalf("content classes: %+v", r.HTTP.ContentReqWan)
		}
	})
}

func BenchmarkFigure4_HTTPReplySizes(b *testing.B) {
	run(b, "D4", func(b *testing.B, r *core.Report) {
		if len(r.HTTP.ReplySizeWan) == 0 {
			b.Fatal("no reply sizes")
		}
	})
}

func BenchmarkTable8_EmailVolume(b *testing.B) {
	run(b, "D0", func(b *testing.B, r *core.Report) {
		if r.Email.Bytes["SMTP"] == 0 && r.Email.Bytes["SIMAP"] == 0 && r.Email.Bytes["IMAP4"] == 0 {
			b.Fatalf("email bytes: %+v", r.Email.Bytes)
		}
	})
}

func BenchmarkFigure5_EmailDurations(b *testing.B) {
	run(b, "D0", func(b *testing.B, r *core.Report) {
		if r.Email.MedianSMTPDurEnt == 0 {
			b.Fatal("no SMTP durations")
		}
	})
}

func BenchmarkFigure6_EmailFlowSizes(b *testing.B) {
	run(b, "D0", func(b *testing.B, r *core.Report) {
		if len(r.Email.SMTPSizeEnt) == 0 {
			b.Fatal("no SMTP size distribution")
		}
	})
}

func BenchmarkTableNS_NameServices(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.Names.NBNSFailureRate == 0 || r.Names.DNSTypes["A"] == 0 {
			b.Fatalf("name services: %+v", r.Names)
		}
	})
}

func BenchmarkTable9_WindowsSuccess(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.Windows.Table9["CIFS"].Pairs == 0 {
			b.Fatal("no CIFS pairs")
		}
	})
}

func BenchmarkTable10_CIFSCommands(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.Windows.CIFSRequests["RPC Pipes"] == 0 {
			b.Fatalf("CIFS commands: %+v", r.Windows.CIFSRequests)
		}
	})
}

func BenchmarkTable11_DCERPCFunctions(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.Windows.RPCRequests["Spoolss/WritePrinter"] == 0 {
			b.Fatalf("RPC functions: %+v", r.Windows.RPCRequests)
		}
	})
}

func BenchmarkTable12_FileServiceSize(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.FileSvc.NFSRequests == 0 || r.FileSvc.NCPRequests == 0 {
			b.Fatalf("file service totals: %+v", r.FileSvc)
		}
	})
}

func BenchmarkTable13_NFSRequests(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.FileSvc.NFSRequestMix["Read"] == 0 {
			b.Fatalf("NFS mix: %+v", r.FileSvc.NFSRequestMix)
		}
	})
}

func BenchmarkTable14_NCPRequests(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if r.FileSvc.NCPRequestMix["Read"] == 0 {
			b.Fatalf("NCP mix: %+v", r.FileSvc.NCPRequestMix)
		}
	})
}

func BenchmarkFigure7_RequestsPerPair(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if len(r.FileSvc.NFSPerPair) == 0 || r.FileSvc.NFSTop3Share == 0 {
			b.Fatal("per-pair distribution missing")
		}
	})
}

func BenchmarkFigure8_FileServiceSizes(b *testing.B) {
	run(b, "D3", func(b *testing.B, r *core.Report) {
		if len(r.FileSvc.NFSReqSizes) == 0 || len(r.FileSvc.NCPReplySizes) == 0 {
			b.Fatal("size distributions missing")
		}
	})
}

func BenchmarkTable15_Backup(b *testing.B) {
	run(b, "D4", func(b *testing.B, r *core.Report) {
		// At bench scale the per-trace backup rates are fractional, so
		// require presence of backup traffic rather than a specific app.
		total := int64(0)
		for _, n := range r.Backup.Conns {
			total += n
		}
		if total == 0 {
			b.Fatalf("backup: %+v", r.Backup)
		}
	})
}

func BenchmarkFigure9_Utilization(b *testing.B) {
	run(b, "D4", func(b *testing.B, r *core.Report) {
		if len(r.Load.Peak1s) == 0 {
			b.Fatal("no utilization data")
		}
	})
}

func BenchmarkFigure10_Retransmission(b *testing.B) {
	run(b, "D4", func(b *testing.B, r *core.Report) {
		any := false
		for _, t := range r.Load.Traces {
			if t.RetransEnt > 0 || t.RetransWan > 0 {
				any = true
			}
		}
		if !any {
			b.Fatal("no retransmissions measured")
		}
	})
}

func BenchmarkScannerRemoval(b *testing.B) {
	run(b, "D0", func(b *testing.B, r *core.Report) {
		if r.Scan.Scanners == 0 || r.Scan.RemovedFraction == 0 {
			b.Fatalf("scan: %+v", r.Scan)
		}
	})
}

func BenchmarkOriginMix(b *testing.B) {
	run(b, "D2", func(b *testing.B, r *core.Report) {
		if r.Origins["ent-ent"] < 0.4 {
			b.Fatalf("origins: %+v", r.Origins)
		}
	})
}

// --- ablation benches (DESIGN.md §5) -----------------------------------

// BenchmarkDecodeParser measures the zero-alloc decoder on a generated
// trace; BenchmarkDecodeAllocating is the naive per-packet-allocation
// baseline it is compared against.
func BenchmarkDecodeParser(b *testing.B) {
	ds := dataset(b, "D3", 6)
	pkts := ds.Traces[0].Packets
	var p layers.Packet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk := pkts[i%len(pkts)]
		_ = layers.Decode(pk.Data, pk.OrigLen, &p)
	}
}

func BenchmarkDecodeAllocating(b *testing.B) {
	ds := dataset(b, "D3", 6)
	pkts := ds.Traces[0].Packets
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk := pkts[i%len(pkts)]
		p := new(layers.Packet)
		_ = layers.Decode(pk.Data, pk.OrigLen, p)
	}
}

// BenchmarkUDPTimeoutAblation measures connection-table cost across the
// UDP inactivity timeouts DESIGN.md calls out (the knob that decides
// whether periodic announcements count as one flow or many).
func BenchmarkUDPTimeoutAblation(b *testing.B) {
	ds := dataset(b, "D2", 6)
	pkts := ds.Traces[0].Packets
	var p layers.Packet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timeout := []int{10, 30, 60}[i%3]
		tbl := flows.NewTable(flows.Config{UDPTimeout: time.Duration(timeout) * time.Second})
		for _, pk := range pkts {
			if err := layers.Decode(pk.Data, pk.OrigLen, &p); err == nil {
				tbl.Packet(pk.Timestamp, &p, pk.OrigLen)
			}
		}
		tbl.Flush()
		if len(tbl.Conns()) == 0 {
			b.Fatal("no conns")
		}
	}
}

// BenchmarkScannerThresholds sweeps the heuristic's sensitivity.
func BenchmarkScannerThresholds(b *testing.B) {
	ds := dataset(b, "D0", 6)
	// Build the connection set once, in start order.
	tbl := flows.NewTable(flows.Config{})
	var p layers.Packet
	for _, tr := range ds.Traces {
		for _, pk := range tr.Packets {
			if err := layers.Decode(pk.Data, pk.OrigLen, &p); err == nil {
				tbl.Packet(pk.Timestamp, &p, pk.OrigLen)
			}
		}
	}
	tbl.Flush()
	res := scan.Filter(tbl.Conns(), enterprise.KnownScanners())
	if len(res.Scanners) == 0 {
		b.Fatal("no scanners at default thresholds")
	}
	conns := tbl.Conns()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := scan.NewDetector()
		d.HostThreshold = 20 + (i%3)*40
		d.ObserveConns(conns)
		_ = d.Scanners()
	}
}
