// Source equivalence for the memory-mapped pcap path: analyzing a D3
// trace through pcap.OpenMmap (zero-copy record views) must produce run
// JSON byte-identical to streaming the same file through the buffered
// Reader, at every point of the worker grid, batch and windowed. This
// is the differential that lets `entanalyze -mmap` claim "reports are
// identical either way".
package enttrace_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
)

// TestMmapRunJSONMatchesBufio is the mmap differential: for each
// {workers}×{replay-workers}×{batch,60s-window} grid point, one
// analyzer reads the trace file via AddTraceReader (bufio path) and one
// via an OpenMmap source; their full-run JSON must match byte for byte.
// The mmap source is Closed between the run and the report render,
// proving no report state borrows the mapping.
func TestMmapRunJSONMatchesBufio(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D3()
	raw := scheduledPcap(t, cfg, gen.DefaultSchedule())
	path := filepath.Join(t.TempDir(), "d3.pcap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := pcap.OpenMmap(path); errors.Is(err, pcap.ErrMmapUnsupported) {
		t.Skip("mmap unsupported on this platform")
	}
	subnet := cfg.Monitored[0]
	prefix := enterprise.SubnetPrefix(subnet)
	name := "sched"
	newAnalyzer := func(workers, replayWorkers int, window time.Duration) *core.Analyzer {
		return core.NewAnalyzer(core.Options{
			Dataset:         cfg.Name,
			KnownScanners:   enterprise.KnownScanners(),
			PayloadAnalysis: cfg.Snaplen >= 1500,
			Workers:         workers,
			ReplayWorkers:   replayWorkers,
			Window:          window,
		})
	}

	for _, workers := range []int{1, 4} {
		for _, replayWorkers := range []int{1, 4} {
			for _, window := range []time.Duration{0, 60 * time.Second} {
				t.Run(fmt.Sprintf("workers=%d/replay=%d/window=%s", workers, replayWorkers, window), func(t *testing.T) {
					ref := newAnalyzer(workers, replayWorkers, window)
					if err := ref.AddTraceReader(name, prefix, bytes.NewReader(raw)); err != nil {
						t.Fatal(err)
					}
					want := runJSON(t, ref)

					mapped := newAnalyzer(workers, replayWorkers, window)
					src, err := pcap.OpenMmap(path)
					if err != nil {
						t.Fatal(err)
					}
					if err := mapped.AddTraceSource(name, prefix, src); err != nil {
						t.Fatal(err)
					}
					if err := src.Close(); err != nil {
						t.Fatal(err)
					}
					got := runJSON(t, mapped)

					if !bytes.Equal(got, want) {
						t.Errorf("mmap run JSON differs from bufio replay (%d vs %d bytes)", len(got), len(want))
					}
				})
			}
		}
	}
}
