// Chaos differential tests for the resilience layer: every fault
// scenario must degrade deterministically — bit-identical cumulative
// reports across the worker grid, batch and windowed, with the folded
// SourceError census exactly equal to the injector's manifest and the
// windowed sums (including aged-out connections) reconciling with the
// cumulative. A graceful stop must likewise be indistinguishable from
// running the same packet prefix to completion, and the serve mode must
// stay reachable (and honest about being degraded) through a
// fault-injected soak.
package enttrace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/faults"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
	"enttrace/internal/pipeline"
)

// chaosAnalyzer is soakAnalyzer plus the resilience knobs: degrade on
// source errors, age out connections idle past two minutes.
func chaosAnalyzer(cfg enterprise.Config, workers int, window time.Duration) *core.Analyzer {
	return core.NewAnalyzer(core.Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: cfg.Snaplen >= 1500,
		Workers:         workers,
		ReplayWorkers:   workers,
		Window:          window,
		OnError:         pipeline.Degrade,
		IdleEvict:       2 * time.Minute,
	})
}

// checkCensusMatches asserts a report's folded census equals the
// injector's fired manifest, field by field.
func checkCensusMatches(t *testing.T, r *core.Report, exp faults.Expected) {
	t.Helper()
	se := r.SourceErrors
	if se.Errors != exp.Errors || se.LostBytes != exp.LostBytes {
		t.Errorf("census totals = (%d errors, %d lost), manifest (%d, %d)",
			se.Errors, se.LostBytes, exp.Errors, exp.LostBytes)
	}
	for k, n := range exp.ByKind {
		if se.ByKind[k] != n {
			t.Errorf("census ByKind[%s] = %d, manifest %d", k, se.ByKind[k], n)
		}
	}
	for k, n := range se.ByKind {
		if exp.ByKind[k] != n {
			t.Errorf("census has %d %s errors the manifest lacks", n, k)
		}
	}
	if exp.Errors == 0 {
		if len(se.Traces) != 0 {
			t.Errorf("census has %d trace entries, manifest none", len(se.Traces))
		}
		return
	}
	if len(se.Traces) != 1 {
		t.Fatalf("census traces = %+v, want exactly one", se.Traces)
	}
	tr := se.Traces[0]
	if tr.FirstIndex != exp.FirstIndex || tr.LastIndex != exp.LastIndex {
		t.Errorf("census offsets %d..%d, manifest %d..%d", tr.FirstIndex, tr.LastIndex, exp.FirstIndex, exp.LastIndex)
	}
	if tr.Terminal != exp.Terminal {
		t.Errorf("census terminal = %v, manifest %v", tr.Terminal, exp.Terminal)
	}
}

// TestChaosGridDeterminism replays fault scenarios over the worker grid
// in batch and windowed mode: the cumulative report must be
// byte-identical at every point, the census must equal the injected
// manifest, and windowed degraded accounting must sum to the
// cumulative.
func TestChaosGridDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos grid analysis in -short mode")
	}
	cfg := enterprise.D3()
	raw := scheduledPcap(t, cfg, gen.DefaultSchedule())
	prefix := enterprise.SubnetPrefix(cfg.Monitored[0])

	scenarios := []struct {
		name, spec string
	}{
		// The default-schedule trace runs ~4k packets; every offset below
		// lands inside it so terminal faults genuinely fire.
		{"recoverable-mix", "read@200,short@900:40,read@2500,stall@3000:1ms,short@3600:14"},
		{"torn-mid-stream", "read@500,torn@3000"},
		{"early-eof", "short@100:48,eof@2500"},
		{"random-seeded", "rand:99:12:4000"},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			fsched, err := faults.ParseSpec(sc.spec)
			if err != nil {
				t.Fatal(err)
			}
			var wantReport []byte         // cumulative report: all grid points, both modes
			var wantExp *faults.Expected  // injector manifest: every run fires identically
			var wantRun map[string][]byte // full run JSON, keyed by mode
			wantRun = make(map[string][]byte)

			for _, workers := range []int{1, 4, 8} {
				for _, window := range []time.Duration{0, 60 * time.Second} {
					point := fmt.Sprintf("workers=%d/window=%s", workers, window)
					a := chaosAnalyzer(cfg, workers, window)
					rd, err := pcap.NewReader(bytes.NewReader(raw))
					if err != nil {
						t.Fatal(err)
					}
					src := faults.Wrap(rd, fsched)
					src.SetSleep(func(time.Duration) {}) // replay stalls instantly
					if err := a.AddTraceSource("chaos", prefix, src); err != nil {
						t.Fatalf("%s: %v", point, err)
					}
					r := a.Report()

					exp := src.Expected()
					if wantExp == nil {
						wantExp = &exp
					} else if !reflect.DeepEqual(exp, *wantExp) {
						t.Errorf("%s: manifest differs between runs: %+v vs %+v", point, exp, *wantExp)
					}
					checkCensusMatches(t, r, exp)

					rj, err := core.MarshalReport(r)
					if err != nil {
						t.Fatal(err)
					}
					if wantReport == nil {
						wantReport = rj
					} else if !bytes.Equal(rj, wantReport) {
						t.Errorf("%s: cumulative report differs from reference (%d vs %d bytes)", point, len(rj), len(wantReport))
					}

					mode := fmt.Sprintf("window=%s", window)
					run := runJSON(t, a)
					if prev, ok := wantRun[mode]; !ok {
						wantRun[mode] = run
					} else if !bytes.Equal(run, prev) {
						t.Errorf("%s: run JSON differs from the %s reference", point, mode)
					}

					// Windowed degraded accounting reconciles: the sum over
					// windows equals the cumulative census.
					if window > 0 {
						var sum core.SourceErrorReport
						byKind := make(map[string]int64)
						for _, w := range a.WindowReports() {
							ws := w.Report.SourceErrors
							sum.Errors += ws.Errors
							sum.LostBytes += ws.LostBytes
							sum.AgedOutConns += ws.AgedOutConns
							sum.CapEvictedConns += ws.CapEvictedConns
							for k, n := range ws.ByKind {
								byKind[k] += n
							}
						}
						cs := r.SourceErrors
						if sum.Errors != cs.Errors || sum.LostBytes != cs.LostBytes ||
							sum.AgedOutConns != cs.AgedOutConns || sum.CapEvictedConns != cs.CapEvictedConns {
							t.Errorf("%s: window sums %+v do not reconcile with cumulative %+v", point, sum, cs)
						}
						if !reflect.DeepEqual(byKind, map[string]int64(cs.ByKind)) && (len(byKind) > 0 || len(cs.ByKind) > 0) {
							t.Errorf("%s: window ByKind sums %v vs cumulative %v", point, byKind, cs.ByKind)
						}
					}

					// The degraded census renders.
					if exp.Errors > 0 && !strings.Contains(core.RenderText(r), "Degraded-run census") {
						t.Errorf("%s: text report lacks the degraded-run census section", point)
					}
				}
			}
		})
	}
}

// TestTruncatedFinalRecordMidRun is the multi-trace regression for a
// torn pcap tail: with the skip policy, a truncated trace in the middle
// of a run costs only its own torn record — every healthy trace's
// packets are still analyzed and the census reports the loss.
func TestTruncatedFinalRecordMidRun(t *testing.T) {
	cfg := enterprise.D3()
	cfg.Scale = 0.05
	cfg.Monitored = cfg.Monitored[:1]
	cfg.PerTap = 1
	ds := gen.GenerateDataset(cfg)
	if len(ds.Traces) == 0 {
		t.Fatal("generator produced no traces")
	}
	tr := ds.Traces[0]
	var buf bytes.Buffer
	if err := gen.WriteTrace(&buf, cfg, tr); err != nil {
		t.Fatal(err)
	}
	healthy := buf.Bytes()
	truncated := healthy[:len(healthy)-9]
	prefix := enterprise.SubnetPrefix(tr.Subnet)

	a := core.NewAnalyzer(core.Options{
		Dataset:       cfg.Name,
		KnownScanners: enterprise.KnownScanners(),
		OnError:       pipeline.Degrade,
	})
	for _, in := range []struct {
		name string
		raw  []byte
	}{
		{"healthy-0", healthy},
		{"torn", truncated},
		{"healthy-1", healthy},
	} {
		if err := a.AddTraceReader(in.name, prefix, bytes.NewReader(in.raw)); err != nil {
			t.Fatalf("%s: %v", in.name, err)
		}
	}
	n := int64(len(tr.Packets))
	if got, want := a.PacketsSeen(), 3*n-1; got != want {
		t.Errorf("packets seen = %d, want %d (two healthy traces + torn prefix)", got, want)
	}
	r := a.Report()
	se := r.SourceErrors
	if se.Errors != 1 || se.ByKind["torn-record"] != 1 {
		t.Fatalf("census = %+v, want one torn-record", se)
	}
	if len(se.Traces) != 1 || se.Traces[0].Trace != "torn" || !se.Traces[0].Terminal {
		t.Errorf("census traces = %+v, want terminal entry for %q", se.Traces, "torn")
	}
	if se.Traces[0].FirstIndex != n-1 {
		t.Errorf("torn record at index %d, want %d", se.Traces[0].FirstIndex, n-1)
	}
}

// stopAfterSource delivers packets from inner and calls stop as the nth
// arrives — the deterministic trigger for the graceful-drain test.
type stopAfterSource struct {
	inner pcap.PacketSource
	rel   pcap.Releaser
	left  int64
	stop  func()
}

func stopAfter(inner pcap.PacketSource, n int64, stop func()) *stopAfterSource {
	s := &stopAfterSource{inner: inner, left: n, stop: stop}
	if rel, ok := inner.(pcap.Releaser); ok {
		s.rel = rel
	}
	return s
}

func (s *stopAfterSource) Next() (*pcap.Packet, error) {
	p, err := s.inner.Next()
	if err == nil {
		s.left--
		if s.left == 0 {
			s.stop()
		}
	}
	return p, err
}

func (s *stopAfterSource) Release(p *pcap.Packet) {
	if s.rel != nil {
		s.rel.Release(p)
	}
}

// TestGracefulDrainDeterminism: a run stopped mid-stream must report
// byte-identically to running the same fault schedule to completion
// through a take-first-N limiter at the drain watermark — stopping is
// truncation, never corruption.
func TestGracefulDrainDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end drain analysis in -short mode")
	}
	cfg := enterprise.D3()
	sched := gen.DefaultSchedule()
	subnet := cfg.Monitored[0]
	prefix := enterprise.SubnetPrefix(subnet)
	fsched, err := faults.ParseSpec("read@300,short@1200:40,read@2600")
	if err != nil {
		t.Fatal(err)
	}
	stream := func() *faults.Source {
		return faults.Wrap(gen.NewStreamSource(gen.StreamConfig{
			Network:  enterprise.NewNetwork(cfg),
			Subnet:   subnet,
			Schedule: sched,
			Snaplen:  cfg.Snaplen,
		}), fsched)
	}
	const drainAt = 2500

	stopped := chaosAnalyzer(cfg, 4, time.Minute)
	if err := stopped.AddTraceSource("drain", prefix, stopAfter(stream(), drainAt, stopped.Stop)); err != nil {
		t.Fatal(err)
	}
	if got := stopped.PacketsSeen(); got != drainAt {
		t.Fatalf("stopped run saw %d packets, want exactly %d", got, drainAt)
	}
	got := runJSON(t, stopped)

	full := chaosAnalyzer(cfg, 4, time.Minute)
	if err := full.AddTraceSource("drain", prefix, faults.Limit(stream(), drainAt)); err != nil {
		t.Fatal(err)
	}
	want := runJSON(t, full)

	if !bytes.Equal(got, want) {
		t.Errorf("stopped run JSON differs from limited full run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestChaosSoakServeHealth is the fault-injected soak: a long streamed
// schedule with a seeded random fault load, served over HTTP while
// analysis runs. /healthz must answer on every poll, the live
// connection table must respect -max-conns, and the final census must
// equal the injection manifest.
func TestChaosSoakServeHealth(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injected soak in -short mode")
	}
	cfg := enterprise.D3()
	sched := gen.DefaultSchedule().Repeat(10 * time.Minute)
	subnet := cfg.Monitored[0]
	prefix := enterprise.SubnetPrefix(subnet)
	const maxConns = 10000

	a := core.NewAnalyzer(core.Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: cfg.Snaplen >= 1500,
		Workers:         4,
		ReplayWorkers:   4,
		Window:          time.Minute,
		OnError:         pipeline.Degrade,
		IdleEvict:       2 * time.Minute,
		MaxConns:        maxConns,
	})
	srv := core.NewReportServer(a)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	src := faults.Wrap(gen.NewStreamSource(gen.StreamConfig{
		Network:  enterprise.NewNetwork(cfg),
		Subnet:   subnet,
		Schedule: sched,
		Snaplen:  cfg.Snaplen,
	}), faults.RandomSchedule(7, 40, 8000))
	src.SetSleep(func(time.Duration) {})

	done := make(chan error, 1)
	go func() { done <- a.AddTraceSource("soak", prefix, src) }()

	poll := func() (status string, live int64) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatalf("/healthz unreachable mid-soak: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("/healthz = %d mid-soak", resp.StatusCode)
		}
		var h struct {
			Status    string
			LiveConns int64
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("/healthz body: %v", err)
		}
		return h.Status, h.LiveConns
	}

	var maxLive int64
	var sawDegraded bool
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("soak analysis failed: %v", err)
			}
			running = false
		case <-time.After(2 * time.Millisecond):
			status, live := poll()
			if live > maxLive {
				maxLive = live
			}
			if status == "degraded" {
				sawDegraded = true
			}
		}
	}
	// The shard cap allows a transient +1 per shard between insert and
	// eviction; anything beyond that is a leak.
	if maxLive > maxConns+8 {
		t.Errorf("live connections peaked at %d, bound %d", maxLive, maxConns)
	}
	exp := src.Expected()
	if exp.Errors > 0 && !sawDegraded {
		// The last poll may have raced the first fault; check the final
		// state below rather than failing outright on timing.
		if status, _ := poll(); status != "degraded" {
			t.Errorf("soak folded %d source errors but health never read degraded", exp.Errors)
		}
	}

	r := a.Report()
	checkCensusMatches(t, r, exp)
	if err := srv.SetFinal(r); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/report/final")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("/report/final = %d after soak", resp.StatusCode)
	}
}
