// Command entreport reproduces every table and figure of "A First Look at
// Modern Enterprise Traffic" (IMC 2005): it generates the five synthetic
// datasets D0–D4, runs the full analysis pipeline over each, and prints
// the paper's tables with measured values.
//
// Usage:
//
//	entreport [-scale 1.0] [-datasets D0,D1,D2,D3,D4] [-subnets N]
//	entreport -datasets D3 -schedule default [-duration 10m] [-window 60s]
//	entreport -datasets D3 -on-error skip -inject "read@50,stall@100:1ms"
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/faults"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
	"enttrace/internal/pipeline"
)

// usageError marks a bad invocation; main exits 2 for it (like flag
// parse failures) and 1 for runtime errors.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	scale := flag.Float64("scale", 1.0, "workload scale factor (volume knob)")
	datasets := flag.String("datasets", "D0,D1,D2,D3,D4", "comma-separated dataset names")
	subnets := flag.Int("subnets", 0, "limit monitored subnets per dataset (0 = all)")
	figdir := flag.String("figdir", "", "directory for per-figure TSV data series (empty = skip)")
	workers := flag.Int("workers", 0, "pipeline shard workers (0 = GOMAXPROCS); results are identical for any count")
	replayWorkers := flag.Int("replay-workers", 0, "application-replay workers (0 = GOMAXPROCS); results are identical for any count")
	window := flag.Duration("window", 0, "cut per-window reports at this interval in packet time (0 = whole-run report only)")
	format := flag.String("format", "text", "report output format: text or json")
	schedule := flag.String("schedule", "",
		`analyze a time-structured schedule streamed straight from the generator (no trace `+
			`materialized) instead of the tap rotation: phase spec or "default"`)
	duration := flag.Duration("duration", 0, "with -schedule, tile the schedule to at least this length")
	onError := flag.String("on-error", "fail",
		`source read-error policy: "fail" aborts on the first error (default); "skip" degrades `+
			`and continues — poisoned records are dropped and the report carries a SourceError census`)
	inject := flag.String("inject", "",
		`deterministic fault injection against every source: "kind@index[:arg],..." with kinds `+
			`read@N, short@N:cut, stall@N:dur, torn@N, eof@N — or "rand:seed:count:span"; pair with `+
			`-on-error skip to exercise degraded runs (the census is checked against the manifest)`)
	flag.Parse()
	if *format != "text" && *format != "json" {
		return &usageError{msg: fmt.Sprintf("unknown -format %q (want text or json)", *format)}
	}
	var policy pipeline.ErrorPolicy
	switch *onError {
	case "fail":
		policy = pipeline.FailFast
	case "skip":
		policy = pipeline.Degrade
	default:
		return &usageError{msg: fmt.Sprintf("unknown -on-error %q (want fail or skip)", *onError)}
	}
	var injectSched faults.Schedule
	if *inject != "" {
		var err error
		if injectSched, err = faults.ParseSpec(*inject); err != nil {
			return &usageError{msg: err.Error()}
		}
	}

	var sched gen.Schedule
	if *schedule != "" {
		sched = gen.DefaultSchedule()
		if *schedule != "default" {
			var err error
			if sched, err = gen.ParseSchedule(*schedule); err != nil {
				return &usageError{msg: err.Error()}
			}
		}
		if *duration > 0 {
			sched = sched.Repeat(*duration)
		}
	} else if *duration > 0 {
		return &usageError{msg: "-duration requires -schedule"}
	}

	want := make(map[string]bool)
	for _, d := range strings.Split(*datasets, ",") {
		want[strings.TrimSpace(d)] = true
	}
	for _, cfg := range enterprise.AllDatasets() {
		if !want[cfg.Name] {
			continue
		}
		cfg.Scale = *scale
		if *subnets > 0 && *subnets < len(cfg.Monitored) {
			cfg.Monitored = cfg.Monitored[:*subnets]
		}
		a := core.NewAnalyzer(core.Options{
			Dataset:         cfg.Name,
			KnownScanners:   enterprise.KnownScanners(),
			PayloadAnalysis: cfg.Snaplen >= 1500,
			Workers:         *workers,
			ReplayWorkers:   *replayWorkers,
			Window:          *window,
			OnError:         policy,
		})
		// wrapSource interposes the fault injector (when -inject is set);
		// both ingest modes route through it — dataset traces via a slice
		// source — so a degraded rotation and a degraded stream exercise
		// the same seam. Injectors are per-dataset: each report's census
		// is checked against exactly the faults fired into it.
		var injectors []*faults.Source
		wrapSource := func(src pcap.PacketSource) pcap.PacketSource {
			if *inject == "" {
				return src
			}
			fs := faults.Wrap(src, injectSched)
			injectors = append(injectors, fs)
			return fs
		}
		var genDur time.Duration
		var totalPkts int64
		start := time.Now()
		if *schedule != "" {
			// Streamed mode: frames go straight from the generator into
			// the pipeline, so generation and analysis share the clock.
			subnet := cfg.Monitored[0]
			src := gen.NewStreamSource(gen.StreamConfig{
				Network:  enterprise.NewNetwork(cfg),
				Subnet:   subnet,
				Schedule: sched,
				Snaplen:  cfg.Snaplen,
			})
			name := fmt.Sprintf("%s/subnet%d/scheduled", cfg.Name, subnet)
			if err := a.AddTraceSource(name, enterprise.SubnetPrefix(subnet), wrapSource(src)); err != nil {
				return fmt.Errorf("analyze %s: %w", cfg.Name, err)
			}
			totalPkts = src.Stats().Frames
		} else {
			ds := gen.GenerateDataset(cfg)
			genDur = time.Since(start)
			totalPkts = int64(ds.TotalPackets())
			start = time.Now()
			for _, tr := range ds.Traces {
				name := fmt.Sprintf("%s/subnet%d/tap%d", cfg.Name, tr.Subnet, tr.Tap)
				src := wrapSource(pcap.NewSliceSource(tr.Packets))
				if err := a.AddTraceSource(name, tr.Prefix, src); err != nil {
					return fmt.Errorf("analyze %s: %w", cfg.Name, err)
				}
			}
		}
		r := a.Report()
		if len(injectors) > 0 && policy == pipeline.Degrade {
			if err := checkCensus(r, injectors); err != nil {
				return err
			}
		}
		windows := a.WindowReports()
		if *format == "json" {
			if err := core.WriteRunJSON(os.Stdout, windows, r); err != nil {
				return fmt.Errorf("json report: %w", err)
			}
		} else {
			if len(windows) > 0 {
				fmt.Print(core.RenderWindowSummary(windows) + "\n")
			}
			fmt.Print(core.RenderText(r))
		}
		if *figdir != "" {
			if err := core.WriteFigureData(*figdir, r); err != nil {
				return fmt.Errorf("figure data: %w", err)
			}
		}
		// Telemetry goes to stdout in text mode (as always) but must not
		// corrupt the machine-readable stream in json mode.
		dst := os.Stdout
		if *format == "json" {
			dst = os.Stderr
		}
		if *schedule != "" {
			fmt.Fprintf(dst, "[%s: streamed %d packets gen→analyze in %.1fs]\n\n",
				cfg.Name, totalPkts, time.Since(start).Seconds())
		} else {
			fmt.Fprintf(dst, "[%s: generated %d packets in %.1fs, analyzed in %.1fs]\n\n",
				cfg.Name, totalPkts, genDur.Seconds(), time.Since(start).Seconds())
		}
	}
	return nil
}

// checkCensus verifies the report's SourceError census against what the
// injectors actually fired; the match line is stable for CI to grep.
func checkCensus(r *core.Report, injectors []*faults.Source) error {
	exp := faults.Expected{ByKind: make(map[string]int64)}
	for _, fs := range injectors {
		e := fs.Expected()
		exp.Errors += e.Errors
		exp.LostBytes += e.LostBytes
		for k, n := range e.ByKind {
			exp.ByKind[k] += n
		}
	}
	got := r.SourceErrors
	ok := got.Errors == exp.Errors && got.LostBytes == exp.LostBytes
	if ok {
		for k, n := range exp.ByKind {
			if got.ByKind[k] != n {
				ok = false
				break
			}
		}
		for k := range got.ByKind {
			if _, want := exp.ByKind[k]; !want {
				ok = false
				break
			}
		}
	}
	if !ok {
		return fmt.Errorf("fault census: report (%d errors, %d bytes lost) does not match injected manifest (%d errors, %d bytes lost)",
			got.Errors, got.LostBytes, exp.Errors, exp.LostBytes)
	}
	fmt.Fprintf(os.Stderr, "fault census: report matches injected manifest (%d errors, %d bytes lost)\n",
		exp.Errors, exp.LostBytes)
	return nil
}
