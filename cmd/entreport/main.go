// Command entreport reproduces every table and figure of "A First Look at
// Modern Enterprise Traffic" (IMC 2005): it generates the five synthetic
// datasets D0–D4, runs the full analysis pipeline over each, and prints
// the paper's tables with measured values.
//
// Usage:
//
//	entreport [-scale 1.0] [-datasets D0,D1,D2,D3,D4] [-subnets N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (volume knob)")
	datasets := flag.String("datasets", "D0,D1,D2,D3,D4", "comma-separated dataset names")
	subnets := flag.Int("subnets", 0, "limit monitored subnets per dataset (0 = all)")
	figdir := flag.String("figdir", "", "directory for per-figure TSV data series (empty = skip)")
	workers := flag.Int("workers", 0, "pipeline shard workers (0 = GOMAXPROCS); results are identical for any count")
	replayWorkers := flag.Int("replay-workers", 0, "application-replay workers (0 = GOMAXPROCS); results are identical for any count")
	window := flag.Duration("window", 0, "cut per-window reports at this interval in packet time (0 = whole-run report only)")
	format := flag.String("format", "text", "report output format: text or json")
	flag.Parse()
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	want := make(map[string]bool)
	for _, d := range strings.Split(*datasets, ",") {
		want[strings.TrimSpace(d)] = true
	}
	for _, cfg := range enterprise.AllDatasets() {
		if !want[cfg.Name] {
			continue
		}
		cfg.Scale = *scale
		if *subnets > 0 && *subnets < len(cfg.Monitored) {
			cfg.Monitored = cfg.Monitored[:*subnets]
		}
		start := time.Now()
		ds := gen.GenerateDataset(cfg)
		genDur := time.Since(start)

		start = time.Now()
		a := core.NewAnalyzer(core.Options{
			Dataset:         cfg.Name,
			KnownScanners:   enterprise.KnownScanners(),
			PayloadAnalysis: cfg.Snaplen >= 1500,
			Workers:         *workers,
			ReplayWorkers:   *replayWorkers,
			Window:          *window,
		})
		for _, tr := range ds.Traces {
			if err := a.AddTrace(core.TraceInput{
				Name:      fmt.Sprintf("%s/subnet%d/tap%d", cfg.Name, tr.Subnet, tr.Tap),
				Monitored: tr.Prefix,
				Packets:   tr.Packets,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "analyze %s: %v\n", cfg.Name, err)
				os.Exit(1)
			}
		}
		r := a.Report()
		windows := a.WindowReports()
		if *format == "json" {
			if err := core.WriteRunJSON(os.Stdout, windows, r); err != nil {
				fmt.Fprintf(os.Stderr, "json report: %v\n", err)
				os.Exit(1)
			}
		} else {
			if len(windows) > 0 {
				fmt.Print(core.RenderWindowSummary(windows) + "\n")
			}
			fmt.Print(core.RenderText(r))
		}
		if *figdir != "" {
			if err := core.WriteFigureData(*figdir, r); err != nil {
				fmt.Fprintf(os.Stderr, "figure data: %v\n", err)
				os.Exit(1)
			}
		}
		// Telemetry goes to stdout in text mode (as always) but must not
		// corrupt the machine-readable stream in json mode.
		dst := os.Stdout
		if *format == "json" {
			dst = os.Stderr
		}
		fmt.Fprintf(dst, "[%s: generated %d packets in %.1fs, analyzed in %.1fs]\n\n",
			cfg.Name, ds.TotalPackets(), genDur.Seconds(), time.Since(start).Seconds())
	}
}
