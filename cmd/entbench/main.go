// Command entbench is the perf-telemetry CLI: it runs the repository's
// benchmark suite (the table/figure analysis units plus the pipeline and
// hot-path micro-benchmarks), writes a structured BENCH_<n>.json report,
// and optionally gates against a baseline report — the command CI uses to
// fail pull requests that regress allocation counts on the hot path.
//
// Usage:
//
//	entbench                                  # run all, write BENCH_<n>.json
//	entbench -run 'pipeline/'                 # subset
//	entbench -o BENCH_baseline.json           # write/refresh the committed baseline
//	entbench -against BENCH_baseline.json -tolerance 10%   # CI gate
//	entbench -memprofile mem.pprof -cpuprofile cpu.pprof   # diagnosable artifacts
//
// Gating model: allocs/op and B/op are compared under -tolerance (they
// are stable for a given Go version); ns/op and pkts/sec are compared
// only when -time-tolerance is set, since wall-clock numbers do not
// transfer between machines. Exit status 1 means a gate tripped.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"enttrace/internal/bench"
)

func main() {
	outDir := flag.String("out", ".", "directory for the numbered BENCH_<n>.json report")
	outFile := flag.String("o", "", "exact output path (overrides -out)")
	runFilter := flag.String("run", "", "regexp selecting benchmarks to run")
	skipFilter := flag.String("skip", "", "regexp excluding benchmarks (applied after -run)")
	against := flag.String("against", "", "baseline BENCH_*.json to compare the new report against")
	tolerance := flag.String("tolerance", "10%", "allowed allocs/op and B/op growth vs the baseline")
	timeTolerance := flag.String("time-tolerance", "", "allowed ns/op growth and pkts/sec decay; empty disables wall-clock gating")
	list := flag.Bool("list", false, "list benchmark names and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile taken after the run to this file")
	flag.Parse()

	if *list {
		for _, bm := range bench.Suite() {
			fmt.Println(bm.Name)
		}
		return
	}

	var filter, skip *regexp.Regexp
	if *runFilter != "" {
		var err error
		if filter, err = regexp.Compile(*runFilter); err != nil {
			fatalf("bad -run pattern: %v", err)
		}
	}
	if *skipFilter != "" {
		var err error
		if skip, err = regexp.Compile(*skipFilter); err != nil {
			fatalf("bad -skip pattern: %v", err)
		}
	}
	tol := bench.Tolerances{Alloc: parsePercent(*tolerance, "-tolerance")}
	if *timeTolerance != "" {
		tol.Time = parsePercent(*timeTolerance, "-time-tolerance")
	}

	// Profiles make a CI regression diagnosable from the uploaded
	// artifact alone: rerun the failing entry locally with the same flags
	// and `go tool pprof` the result. The CPU profile is stopped (and the
	// file flushed) as soon as the suite finishes — not deferred — because
	// the regression gate below exits with os.Exit, which would skip
	// defers and truncate the profile exactly when it is needed.
	stopCPU := func() {}
	if *cpuProfile != "" {
		f, err := createFile(*cpuProfile)
		if err != nil {
			fatalf("creating -cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	rep := bench.RunSuite(filter, skip, func(line string) { fmt.Fprintln(os.Stderr, line) })
	stopCPU()
	if len(rep.Metrics) == 0 {
		fatalf("no benchmarks matched -run %q -skip %q", *runFilter, *skipFilter)
	}

	if *memProfile != "" {
		f, err := createFile(*memProfile)
		if err != nil {
			fatalf("creating -memprofile: %v", err)
		}
		runtime.GC() // flush accumulated allocation stats
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fatalf("writing heap profile: %v", err)
		}
		f.Close()
	}
	rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)

	path := *outFile
	if path == "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("creating -out directory: %v", err)
		}
		var err error
		if path, err = bench.NextPath(*outDir); err != nil {
			fatalf("choosing report path: %v", err)
		}
	}
	if err := rep.WriteFile(path); err != nil {
		fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote %s (%d metrics)\n", path, len(rep.Metrics))

	if *against == "" {
		return
	}
	baseline, err := bench.ReadFile(*against)
	if err != nil {
		fatalf("loading baseline: %v", err)
	}
	cmp := bench.Compare(baseline, rep, tol)
	for _, d := range cmp.Deltas {
		fmt.Println(d)
	}
	for _, name := range cmp.NewInCurrent {
		fmt.Printf("%-34s (new, no baseline)\n", name)
	}
	for _, name := range cmp.MissingInCurrent {
		fmt.Printf("%-34s MISSING from this run\n", name)
	}
	if cmp.Regressed() {
		fmt.Printf("FAIL: regression vs %s (tolerance %s)\n", *against, *tolerance)
		os.Exit(1)
	}
	fmt.Printf("PASS: no regression vs %s (tolerance %s)\n", *against, *tolerance)
}

// parsePercent accepts "10%", "10", or "0.1" (all meaning ten percent).
func parsePercent(s, flagName string) float64 {
	trimmed := strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(trimmed, 64)
	if err != nil || v < 0 {
		fatalf("bad %s value %q", flagName, s)
	}
	if v >= 1 || strings.HasSuffix(strings.TrimSpace(s), "%") {
		v /= 100
	}
	return v
}

// createFile creates path, making parent directories as needed (profile
// outputs usually live next to the report in the -out directory).
func createFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "entbench: "+format+"\n", args...)
	os.Exit(1)
}
