// Command entbench is the perf-telemetry CLI: it runs the repository's
// benchmark suite (the table/figure analysis units plus the pipeline and
// hot-path micro-benchmarks), writes a structured BENCH_<n>.json report,
// and optionally gates against a baseline report — the command CI uses to
// fail pull requests that regress allocation counts on the hot path.
//
// Usage:
//
//	entbench                                  # run all, write BENCH_<n>.json
//	entbench -run 'pipeline/'                 # subset
//	entbench -o BENCH_baseline.json           # write/refresh the committed baseline
//	entbench -against BENCH_baseline.json -tolerance 10%   # CI gate
//	entbench -memprofile mem.pprof -cpuprofile cpu.pprof   # diagnosable artifacts
//
// Gating model: allocs/op and B/op are compared under -tolerance (they
// are stable for a given Go version); ns/op and pkts/sec are compared
// only when -time-tolerance is set, since wall-clock numbers do not
// transfer between machines. Exit status 1 means a gate tripped.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"enttrace/internal/bench"
)

// errRegression is the regression gate's exit-1 signal; the FAIL line
// has already been printed when it surfaces.
var errRegression = errors.New("entbench: regression gate tripped")

func main() {
	if err := run(); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintf(os.Stderr, "entbench: %v\n", err)
		}
		os.Exit(1)
	}
}

func run() error {
	outDir := flag.String("out", ".", "directory for the numbered BENCH_<n>.json report")
	outFile := flag.String("o", "", "exact output path (overrides -out)")
	runFilter := flag.String("run", "", "regexp selecting benchmarks to run")
	skipFilter := flag.String("skip", "", "regexp excluding benchmarks (applied after -run)")
	against := flag.String("against", "", "baseline BENCH_*.json to compare the new report against")
	tolerance := flag.String("tolerance", "10%", "allowed allocs/op and B/op growth vs the baseline")
	timeTolerance := flag.String("time-tolerance", "", "allowed ns/op growth and pkts/sec decay; empty disables wall-clock gating")
	cpus := flag.String("cpus", "",
		"comma-separated GOMAXPROCS values (e.g. 1,2,4,8) adding the informational scaling/D3\n"+
			"grid: the full D3 analysis, batch and 60s-windowed, once per value. Gated entries\n"+
			"still run at the process default; each entry's width is recorded as gomaxprocs.")
	list := flag.Bool("list", false, "list benchmark names and exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation (heap) profile taken after the run to this file")
	flag.Parse()

	entries := bench.Suite()
	if *cpus != "" {
		grid, err := parseCPUs(*cpus)
		if err != nil {
			return err
		}
		entries = append(entries, bench.ScalingSuite(grid)...)
	}

	if *list {
		for _, bm := range entries {
			fmt.Println(bm.Name)
		}
		return nil
	}

	var filter, skip *regexp.Regexp
	if *runFilter != "" {
		var err error
		if filter, err = regexp.Compile(*runFilter); err != nil {
			return fmt.Errorf("bad -run pattern: %w", err)
		}
	}
	if *skipFilter != "" {
		var err error
		if skip, err = regexp.Compile(*skipFilter); err != nil {
			return fmt.Errorf("bad -skip pattern: %w", err)
		}
	}
	tol := bench.Tolerances{Alloc: parsePercent(*tolerance, "-tolerance")}
	if *timeTolerance != "" {
		tol.Time = parsePercent(*timeTolerance, "-time-tolerance")
	}

	// Profiles make a CI regression diagnosable from the uploaded
	// artifact alone: rerun the failing entry locally with the same flags
	// and `go tool pprof` the result. The CPU profile is stopped (and the
	// file flushed) as soon as the suite finishes — before the regression
	// gate runs — and the deferred stop is the idempotent backstop that
	// flushes it on every early-error return.
	stopCPU := func() {}
	if *cpuProfile != "" {
		f, err := createFile(*cpuProfile)
		if err != nil {
			return fmt.Errorf("creating -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("starting CPU profile: %w", err)
		}
		stopped := false
		stopCPU = func() {
			if stopped {
				return
			}
			stopped = true
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopCPU()
	}

	rep := bench.RunBenchmarks(entries, filter, skip, func(line string) { fmt.Fprintln(os.Stderr, line) })
	stopCPU()
	if len(rep.Metrics) == 0 {
		return fmt.Errorf("no benchmarks matched -run %q -skip %q", *runFilter, *skipFilter)
	}

	if *memProfile != "" {
		f, err := createFile(*memProfile)
		if err != nil {
			return fmt.Errorf("creating -memprofile: %w", err)
		}
		runtime.GC() // flush accumulated allocation stats
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			f.Close()
			return fmt.Errorf("writing heap profile: %w", err)
		}
		f.Close()
	}
	rep.CreatedAt = time.Now().UTC().Format(time.RFC3339)

	path := *outFile
	if path == "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return fmt.Errorf("creating -out directory: %w", err)
		}
		var err error
		if path, err = bench.NextPath(*outDir); err != nil {
			return fmt.Errorf("choosing report path: %w", err)
		}
	}
	if err := rep.WriteFile(path); err != nil {
		return fmt.Errorf("writing report: %w", err)
	}
	fmt.Printf("wrote %s (%d metrics)\n", path, len(rep.Metrics))

	if *against == "" {
		return nil
	}
	baseline, err := bench.ReadFile(*against)
	if err != nil {
		return fmt.Errorf("loading baseline: %w", err)
	}
	cmp := bench.Compare(baseline, rep, tol)
	for _, d := range cmp.Deltas {
		fmt.Println(d)
	}
	for _, name := range cmp.NewInCurrent {
		fmt.Printf("%-34s (new, no baseline)\n", name)
	}
	for _, name := range cmp.MissingInCurrent {
		fmt.Printf("%-34s MISSING from this run\n", name)
	}
	if cmp.Regressed() {
		fmt.Printf("FAIL: regression vs %s (tolerance %s)\n", *against, *tolerance)
		return errRegression
	}
	fmt.Printf("PASS: no regression vs %s (tolerance %s)\n", *against, *tolerance)
	return nil
}

// parseCPUs parses the -cpus grid ("1,2,4,8") into GOMAXPROCS values.
func parseCPUs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -cpus value %q: want positive integers, e.g. 1,2,4,8", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// parsePercent accepts "10%", "10", or "0.1" (all meaning ten percent).
func parsePercent(s, flagName string) float64 {
	trimmed := strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(trimmed, 64)
	if err != nil || v < 0 {
		fmt.Fprintf(os.Stderr, "entbench: bad %s value %q\n", flagName, s)
		os.Exit(2)
	}
	if v >= 1 || strings.HasSuffix(strings.TrimSpace(s), "%") {
		v /= 100
	}
	return v
}

// createFile creates path, making parent directories as needed (profile
// outputs usually live next to the report in the -out directory).
func createFile(path string) (*os.File, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return os.Create(path)
}
