// Command entgen generates the synthetic enterprise datasets as libpcap
// trace files, one file per monitored subnet per tap — the on-disk shape
// of the paper's capture campaign. The traces are ordinary Ethernet pcaps
// readable by any packet tool.
//
// Usage:
//
//	entgen -dataset D3 -out ./traces [-scale 1.0] [-subnets N]
//	entgen -dataset D3 -schedule default [-duration 10m] -out ./traces
//	entgen -evasion all -out ./traces
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// usageError marks a bad invocation; main exits 2 for it (like flag
// parse failures) and 1 for runtime errors.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	dataset := flag.String("dataset", "D0", "dataset name (D0..D4)")
	out := flag.String("out", ".", "output directory")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	subnets := flag.Int("subnets", 0, "limit monitored subnets (0 = all)")
	schedule := flag.String("schedule", "",
		`emit one time-structured trace instead of the tap rotation: comma-separated phases `+
			`kind:duration[:rate] with rate in sessions/minute, e.g. `+
			`"ramp:60s:0-30,burst:60s:90,quiet:60s,steady:2m:18"; "default" uses the built-in day-in-miniature`)
	duration := flag.Duration("duration", 0,
		"with -schedule, tile the schedule to at least this length (soak-sized traces; 0 = emit it once)")
	evasion := flag.String("evasion", "",
		`emit adversarial evasion scenario pcaps instead of the tap rotation: a scenario name, `+
			`"all", or "list" to print the scenario family`)
	flag.Parse()

	if *evasion == "list" {
		for _, sc := range gen.EvasionScenarios() {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Description)
		}
		return nil
	}

	var cfg enterprise.Config
	found := false
	for _, c := range enterprise.AllDatasets() {
		if c.Name == *dataset {
			cfg, found = c, true
		}
	}
	if !found {
		return &usageError{msg: fmt.Sprintf("unknown dataset %q", *dataset)}
	}
	cfg.Scale = *scale
	if *subnets > 0 && *subnets < len(cfg.Monitored) {
		cfg.Monitored = cfg.Monitored[:*subnets]
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if *evasion != "" {
		scenarios := gen.EvasionScenarios()
		if *evasion != "all" {
			sc, ok := gen.EvasionScenarioByName(*evasion)
			if !ok {
				return &usageError{msg: fmt.Sprintf("unknown evasion scenario %q (try -evasion list)", *evasion)}
			}
			scenarios = []gen.EvasionScenario{sc}
		}
		for _, sc := range scenarios {
			tr := sc.Build()
			name := fmt.Sprintf("evasion-%s.pcap", sc.Name)
			path := filepath.Join(*out, name)
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			// Full frames: evasion pcaps carry their corrupt headers and
			// payload bytes intact regardless of the dataset snaplen.
			wcfg := cfg
			wcfg.Snaplen = 65535
			if err := gen.WriteTrace(f, wcfg, tr); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("%s: %d packets (%s)\n", path, len(tr.Packets), sc.Description)
		}
		return nil
	}
	if *schedule != "" {
		sched := gen.DefaultSchedule()
		if *schedule != "default" {
			var err error
			if sched, err = gen.ParseSchedule(*schedule); err != nil {
				return &usageError{msg: err.Error()}
			}
		}
		if *duration > 0 {
			sched = sched.Repeat(*duration)
		}
		subnet := cfg.Monitored[0]
		name := fmt.Sprintf("%s-scheduled-subnet%02d.pcap", cfg.Name, subnet)
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Stream the frames straight to disk: a soak-length schedule never
		// materializes in memory, and the file is byte-identical to the
		// materialized path.
		src := gen.NewStreamSource(gen.StreamConfig{
			Network:  enterprise.NewNetwork(cfg),
			Subnet:   subnet,
			Schedule: sched,
			Snaplen:  cfg.Snaplen,
		})
		n, err := gen.WriteStream(f, cfg.Snaplen, src)
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d packets over %s\n", path, n, sched.Duration())
		return nil
	}
	ds := gen.GenerateDataset(cfg)
	for _, tr := range ds.Traces {
		name := fmt.Sprintf("%s-subnet%02d-tap%d.pcap", cfg.Name, tr.Subnet, tr.Tap)
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := gen.WriteTrace(f, cfg, tr); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d packets\n", path, len(tr.Packets))
	}
	return nil
}
