// Command entanalyze runs the paper's analysis pipeline over existing
// libpcap traces (for example, files produced by entgen, or any Ethernet
// capture) and prints the reproduced tables.
//
// Usage:
//
//	entanalyze [-payload] [-monitored 128.3.5.0/24] trace1.pcap [trace2.pcap ...]
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/pcap"
)

func main() {
	payload := flag.Bool("payload", true, "enable application-payload analysis")
	monitored := flag.String("monitored", "128.3.0.0/16", "monitored prefix for fan-in/out")
	dataset := flag.String("name", "pcap", "label for the report")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: entanalyze [flags] trace.pcap ...")
		os.Exit(2)
	}
	prefix, err := netip.ParsePrefix(*monitored)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	a := core.NewAnalyzer(core.Options{
		Dataset:         *dataset,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: *payload,
	})
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r, err := pcap.NewReader(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		pkts, err := r.ReadAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		f.Close()
		if err := a.AddTrace(core.TraceInput{Name: path, Monitored: prefix, Packets: pkts}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s: %d packets\n", path, len(pkts))
	}
	fmt.Print(core.RenderText(a.Report()))
}
