// Command entanalyze runs the paper's analysis pipeline over existing
// libpcap traces (for example, files produced by entgen, or any Ethernet
// capture) and prints the reproduced tables. Traces are streamed — packets
// are decoded in batches and sharded across workers, so multi-GB captures
// are analyzed without materializing them in memory.
//
// With -window, the analysis additionally cuts per-window reports at
// fixed boundaries in packet time; with -serve, a long-running HTTP
// server exposes the latest window, any window by index, and a health
// endpoint while analysis streams (and the final report afterwards).
//
// With -gen, no trace files are read at all: frames are synthesized on
// the fly from a gen.Schedule and streamed straight into the pipeline —
// the in-memory load harness. -duration tiles the schedule for soak
// runs; memory stays bounded however long it runs, and the report is
// byte-identical to writing the same schedule to a pcap and replaying
// it.
//
// Resilience controls: -on-error selects the source read-error policy
// (fail-fast, or skip poisoned records and fold a SourceError census
// into the report), -inject drives a deterministic fault schedule
// against any source for chaos testing, and -idle-evict/-max-conns
// bound the connection table for indefinite runs. SIGINT/SIGTERM drain
// gracefully: intake stops, routed packets flush, the final report is
// emitted, and the process exits 0.
//
// Two-tier fleet mode: with -ship, a site streams its per-window
// snapshot deltas to an aggregator over TCP (at-least-once delivery,
// exponential-backoff reconnect); with -aggregate, the process runs as
// the aggregator instead — it reads no traces, merges every site's
// snapshots into fleet-wide reports, and serves them (with per-site
// liveness) over -serve. Windowed fleet members must share a window
// clock: pass the same -window and -window-origin to every site.
//
// Usage:
//
//	entanalyze [-payload] [-workers N] [-replay-workers N] [-monitored 128.3.5.0/24]
//	           [-window 60s] [-format text|json] [-serve :8080]
//	           [-on-error fail|skip] [-inject spec] [-idle-evict 5m] [-max-conns N]
//	           trace1.pcap [trace2.pcap ...]
//	entanalyze -gen default [-gen-dataset D3] [-duration 10m] [-window 60s] [-serve :8080]
//	entanalyze -ship agg:9444 -site lbl-east [-window 60s -window-origin 2005-01-06T09:00:00Z]
//	           [-trace-base N] trace1.pcap ...
//	entanalyze -aggregate :9444 [-expect-sites east,west] [-stale-after 30s] [-serve :8080]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/faults"
	"enttrace/internal/fleet"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
	"enttrace/internal/pipeline"
	"enttrace/internal/stats"
)

// usageError marks a bad invocation; main exits 2 for it (like flag
// parse failures) and 1 for runtime errors.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	payload := flag.Bool("payload", true, "enable application-payload analysis")
	monitored := flag.String("monitored", "128.3.0.0/16", "monitored prefix for fan-in/out")
	dataset := flag.String("name", "pcap", "label for the report")
	workers := flag.Int("workers", 0, "pipeline shard workers (0 = GOMAXPROCS); results are identical for any count")
	replayWorkers := flag.Int("replay-workers", 0, "application-replay workers (0 = GOMAXPROCS); results are identical for any count")
	window := flag.Duration("window", 0, "cut per-window reports at this interval in packet time (0 = whole-run report only)")
	mmapInput := flag.Bool("mmap", false,
		"memory-map trace files instead of streaming through bufio (Linux; zero-copy packet views).\n"+
			"Falls back to the streaming reader where mmap is unavailable. Reports are identical either way.")
	format := flag.String("format", "text", "report output format: text or json")
	serve := flag.String("serve", "", "serve reports over HTTP at this address (e.g. :8080); window endpoints need -window")
	genSpec := flag.String("gen", "",
		`stream a synthesized schedule instead of reading trace files: comma-separated phases `+
			`kind:duration[:rate] with rate in sessions/minute (e.g. "steady:5m:120"), or "default" `+
			`for the built-in day-in-miniature; frames never touch disk`)
	genDataset := flag.String("gen-dataset", "D3", "dataset shape for -gen (D0..D4): snaplen, subnets, seed")
	duration := flag.Duration("duration", 0, "with -gen, tile the schedule to at least this length (soak mode; 0 = run it once)")
	onError := flag.String("on-error", "fail",
		`source read-error policy: "fail" aborts on the first error (default); "skip" degrades `+
			`and continues — poisoned records are dropped and the report carries a SourceError census`)
	inject := flag.String("inject", "",
		`deterministic fault injection against every source: "kind@index[:arg],..." with kinds `+
			`read@N, short@N:cut, stall@N:dur, torn@N, eof@N — or "rand:seed:count:span"; pair with `+
			`-on-error skip to exercise degraded runs (the census is checked against the manifest)`)
	idleEvict := flag.Duration("idle-evict", 0,
		"evict connections idle past this horizon, bounding memory on indefinite runs "+
			"(0 = protocol-default timeouts only); evictions are banked as the report's AgedOut disposition")
	maxConns := flag.Int("max-conns", 0,
		"hard bound on live connections across all shards (0 = unbounded); a lossy backstop — "+
			"evictions are surfaced in the report when it fires")
	ship := flag.String("ship", "",
		"stream per-window snapshot deltas to a fleet aggregator at this TCP address "+
			"(two-tier mode; requires -site, and -window-origin when windowed)")
	site := flag.String("site", "", "with -ship: this site's unique name in the fleet")
	windowOrigin := flag.String("window-origin", "",
		"with -ship and -window: the fleet's shared window-clock origin, RFC3339 "+
			"(every site must pass the same value or the aggregator refuses the session)")
	traceBase := flag.Int("trace-base", 0,
		"with -ship: global ordinal of this site's first trace, so the fleet report "+
			"orders per-trace rows exactly like a single instance over the concatenated traces")
	aggregate := flag.String("aggregate", "",
		"run as the fleet aggregator listening for site shippers at this TCP address; "+
			"no traces are read — reports come from merged site snapshots (pair with -serve)")
	expectSites := flag.String("expect-sites", "",
		"with -aggregate: comma-separated site names the fleet is incomplete without; "+
			"an absent site keeps /report/final unavailable and is named in /healthz")
	staleAfter := flag.Duration("stale-after", 30*time.Second,
		"with -aggregate -serve: degrade /healthz and name a site stale after this long "+
			"without a frame from it (0 = never)")
	flag.Parse()
	if *aggregate != "" {
		if flag.NArg() > 0 || *genSpec != "" || *ship != "" {
			return usagef("-aggregate runs a standalone aggregator: it takes no traces, -gen, or -ship")
		}
		if *format != "text" && *format != "json" {
			return usagef("unknown -format %q (want text or json)", *format)
		}
		return runAggregate(*aggregate, *expectSites, *dataset, *serve, *staleAfter, *format)
	}
	if *expectSites != "" || setOnCommandLine("stale-after") {
		return usagef("-expect-sites and -stale-after require -aggregate")
	}
	if (flag.NArg() == 0) == (*genSpec == "") {
		return usagef("usage: entanalyze [flags] trace.pcap ...\n       entanalyze -gen <schedule|default> [flags]\n       entanalyze -aggregate <addr> [flags]")
	}
	if (*ship == "") != (*site == "") {
		return usagef("-ship and -site go together (a fleet site needs both)")
	}
	if *ship == "" && *traceBase != 0 {
		return usagef("-trace-base only applies to fleet sites (-ship)")
	}
	if *windowOrigin != "" && *window <= 0 {
		return usagef("-window-origin requires -window")
	}
	var shipOrigin time.Time
	if *windowOrigin != "" {
		var err error
		if shipOrigin, err = time.Parse(time.RFC3339, *windowOrigin); err != nil {
			return usagef("-window-origin: %v", err)
		}
	}
	if *ship != "" && *window > 0 && *windowOrigin == "" {
		return usagef("a windowed fleet site needs -window-origin (the shared window clock; same RFC3339 instant on every site)")
	}
	if *format != "text" && *format != "json" {
		return usagef("unknown -format %q (want text or json)", *format)
	}
	var policy pipeline.ErrorPolicy
	switch *onError {
	case "fail":
		policy = pipeline.FailFast
	case "skip":
		policy = pipeline.Degrade
	default:
		return usagef("unknown -on-error %q (want fail or skip)", *onError)
	}
	var injectSched faults.Schedule
	if *inject != "" {
		var err error
		if injectSched, err = faults.ParseSpec(*inject); err != nil {
			return &usageError{msg: err.Error()}
		}
	}
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	prefix, err := netip.ParsePrefix(*monitored)
	if err != nil {
		return &usageError{msg: err.Error()}
	}

	// Soak-mode setup: resolve the schedule and dataset shape up front so
	// flag errors surface before the server starts.
	var streamCfg gen.StreamConfig
	if *genSpec != "" {
		var cfg enterprise.Config
		found := false
		for _, c := range enterprise.AllDatasets() {
			if c.Name == *genDataset {
				cfg, found = c, true
			}
		}
		if !found {
			return usagef("unknown -gen-dataset %q", *genDataset)
		}
		sched := gen.DefaultSchedule()
		if *genSpec != "default" {
			if sched, err = gen.ParseSchedule(*genSpec); err != nil {
				return &usageError{msg: err.Error()}
			}
		}
		if *duration > 0 {
			sched = sched.Repeat(*duration)
		}
		subnet := cfg.Monitored[0]
		streamCfg = gen.StreamConfig{
			Network:  enterprise.NewNetwork(cfg),
			Subnet:   subnet,
			Schedule: sched,
			Snaplen:  cfg.Snaplen,
		}
		// The synthesized trace is a single monitored-subnet vantage;
		// default the fan-in/out prefix to it unless the user said
		// otherwise.
		if !setFlags["monitored"] {
			prefix = enterprise.SubnetPrefix(subnet)
		}
		if !setFlags["name"] {
			*dataset = fmt.Sprintf("%s-gen", cfg.Name)
		}
	} else if setFlags["duration"] || setFlags["gen-dataset"] {
		return usagef("-duration and -gen-dataset require -gen")
	}
	opts := core.Options{
		Dataset:         *dataset,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: *payload,
		Workers:         *workers,
		ReplayWorkers:   *replayWorkers,
		Window:          *window,
		WindowOrigin:    shipOrigin,
		TraceBase:       *traceBase,
		OnError:         policy,
		IdleEvict:       *idleEvict,
		MaxConns:        *maxConns,
	}
	// shipper is assigned after the analyzer exists (the HELLO carries
	// the analyzer's snapshot schema and window config); the OnWindow
	// closure reads it through the variable.
	var shipper *fleet.Shipper
	var a *core.Analyzer
	if *window > 0 {
		// Narrate window completion as the watermark passes each
		// boundary, so a long streaming run shows progress — and in
		// fleet mode, ship the completed window as a provisional
		// snapshot (the end-of-run canonical re-export supersedes it).
		opts.OnWindow = func(wr *core.WindowReport) {
			fmt.Fprintf(os.Stderr, "window %d [%s, %s): %d conns, %s payload\n",
				wr.Index, wr.Start.UTC().Format("15:04:05"), wr.End.UTC().Format("15:04:05"),
				wr.Report.Table3.TotalConns, stats.Bytes(wr.Report.Table3.TotalBytes))
			if shipper != nil {
				if we, err := a.ExportWindow(wr.Index); err == nil {
					shipper.ShipDelta(we.Window, we.Watermark, we.Payload)
				} else {
					fmt.Fprintf(os.Stderr, "ship window %d: %v\n", wr.Index, err)
				}
			}
		}
	}
	a = core.NewAnalyzer(opts)
	var hbStop chan struct{}
	if *ship != "" {
		var err error
		shipper, err = fleet.NewShipper(fleet.ShipperConfig{
			Addr:  *ship,
			Site:  *site,
			Hello: a.FleetHello(),
			Logf:  func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			return err
		}
		// Liveness heartbeats while analysis streams, so the aggregator
		// can tell a slow site from a dead one; stopped before Close.
		hbStop = make(chan struct{})
		go func() {
			tick := time.NewTicker(5 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if wm := a.Watermark(); !wm.IsZero() {
						shipper.Heartbeat(wm.UnixNano())
					}
				case <-hbStop:
					return
				}
			}
		}()
	}

	// Graceful drain: the first SIGINT/SIGTERM stops intake at the next
	// packet boundary; routed packets flush, the final report (and, with
	// -serve, /report/final) is emitted, and run returns nil — exit 0. A
	// second signal gets default handling (immediate termination).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sigDone := make(chan struct{})
	go func() {
		<-sigc
		signal.Stop(sigc)
		fmt.Fprintln(os.Stderr, "signal: draining — stopping intake, flushing windows, emitting final report")
		a.Stop()
		close(sigDone)
	}()

	// wrapSource interposes the fault injector (when -inject is set) and
	// remembers each injector so the census self-check can aggregate the
	// manifests afterwards.
	var injectors []*faults.Source
	wrapSource := func(src pcap.PacketSource) pcap.PacketSource {
		if *inject == "" {
			return src
		}
		fs := faults.Wrap(src, injectSched)
		injectors = append(injectors, fs)
		return fs
	}

	var srv *core.ReportServer
	if *serve != "" {
		srv = core.NewReportServer(a)
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving reports on http://%s (/healthz, /report/latest, /report/window/<n>, /report/final)\n",
			ln.Addr())
		go func() {
			server := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
			if err := server.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	if *genSpec != "" {
		src := gen.NewStreamSource(streamCfg)
		start := time.Now()
		if err := a.AddTraceSource(*dataset, prefix, wrapSource(src)); err != nil {
			return fmt.Errorf("gen stream: %w", err)
		}
		wall := time.Since(start)
		st := src.Stats()
		fmt.Fprintf(os.Stderr, "gen stream: %d packets over %s of schedule in %.1fs wall (%.0f pkts/s), peak %d frames buffered, %d in flight\n",
			st.Frames, streamCfg.Schedule.Duration(), wall.Seconds(),
			float64(st.Frames)/wall.Seconds(), st.PeakBuffered, st.PeakInFlight)
	}
	var pool *pcap.Pool
	for _, path := range flag.Args() {
		before := a.PacketsSeen()
		err := func() error {
			if *mmapInput {
				src, err := pcap.OpenMmap(path)
				switch {
				case err == nil:
					// The mapping can be dropped as soon as the run
					// returns: the analyzer's borrow contract consumes
					// every retained view during replay, so nothing
					// outlives AddTraceSource.
					defer src.Close()
					return a.AddTraceSource(path, prefix, wrapSource(src))
				case errors.Is(err, pcap.ErrMmapUnsupported):
					fmt.Fprintf(os.Stderr, "%s: mmap unavailable on this platform; streaming instead\n", path)
				default:
					return err
				}
			}
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			defer f.Close()
			if *inject == "" {
				return a.AddTraceReader(path, prefix, bufio.NewReaderSize(f, 1<<20))
			}
			// Injection needs to sit between the pcap reader and the
			// pipeline, so build the pooled source here instead of
			// letting the analyzer do it.
			rd, err := pcap.NewReader(bufio.NewReaderSize(f, 1<<20))
			if err != nil {
				return err
			}
			if pool == nil {
				pool = pcap.NewPool()
			}
			return a.AddTraceSource(path, prefix, wrapSource(pcap.NewPooledReader(rd, pool)))
		}()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d packets\n", path, a.PacketsSeen()-before)
	}

	if shipper != nil {
		close(hbStop)
		exports, err := a.ExportAll()
		if err != nil {
			return fmt.Errorf("fleet export: %w", err)
		}
		maxWindow := -1
		var watermark int64
		for _, we := range exports {
			shipper.ShipDelta(we.Window, we.Watermark, we.Payload)
			if we.Window > maxWindow {
				maxWindow = we.Window
			}
			watermark = we.Watermark
		}
		shipper.Fin(maxWindow, watermark)
		if err := shipper.Close(); err != nil {
			return fmt.Errorf("ship to %s: %w", *ship, err)
		}
		st := shipper.Stats()
		fmt.Fprintf(os.Stderr, "shipped %d windows to %s as site %s (%d frames acked, %d reconnects, %d resends)\n",
			len(exports), *ship, *site, st.Acked, st.Reconnects, st.Resends)
	}

	report := a.Report()
	windows := a.WindowReports()
	switch *format {
	case "json":
		if err := core.WriteRunJSON(os.Stdout, windows, report); err != nil {
			return err
		}
	default:
		if len(windows) > 0 {
			fmt.Print(core.RenderWindowSummary(windows) + "\n")
		}
		fmt.Print(core.RenderText(report))
	}
	if len(injectors) > 0 && policy == pipeline.Degrade && !a.Stopping() {
		if err := checkCensus(report, injectors); err != nil {
			return err
		}
	}
	if srv != nil {
		if err := srv.SetFinal(report); err != nil {
			return err
		}
		if !a.Stopping() {
			fmt.Fprintln(os.Stderr, "analysis complete; still serving (SIGINT/SIGTERM to exit)")
			<-sigDone
		}
	}
	return nil
}

// setOnCommandLine reports whether the named flag was explicitly set.
func setOnCommandLine(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runAggregate is the -aggregate mode: a standalone fleet aggregator
// that accepts site shippers on addr, merges their window snapshots
// (idempotently — delivery is at-least-once), optionally serves
// fleet-wide reports and per-site liveness over HTTP, and on
// SIGINT/SIGTERM drains and emits the merged report — degraded with a
// per-site census when sites are missing, lagging, or lost.
func runAggregate(addr, expect, dataset, serveAddr string, staleAfter time.Duration, format string) error {
	var sites []string
	for _, s := range strings.Split(expect, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sites = append(sites, s)
		}
	}
	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	f := core.NewFleet(core.FleetConfig{Dataset: dataset, ExpectSites: sites, Logf: logf})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	agg := fleet.NewAggregator(ln, f, logf)
	if len(sites) > 0 {
		fmt.Fprintf(os.Stderr, "fleet aggregator listening on %s (expecting sites: %s)\n", ln.Addr(), strings.Join(sites, ", "))
	} else {
		fmt.Fprintf(os.Stderr, "fleet aggregator listening on %s\n", ln.Addr())
	}
	served := make(chan struct{})
	go func() {
		defer close(served)
		if err := agg.Serve(); !errors.Is(err, net.ErrClosed) {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	var fsrv *core.FleetServer
	if serveAddr != "" {
		fsrv = core.NewFleetServer(f)
		fsrv.SetStaleThreshold(staleAfter)
		hln, err := net.Listen("tcp", serveAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving fleet reports on http://%s (/healthz, /report/latest, /report/window/<n>, /report/fleet, /report/final)\n",
			hln.Addr())
		go func() {
			server := &http.Server{Handler: fsrv, ReadHeaderTimeout: 10 * time.Second}
			if err := server.Serve(hln); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	signal.Stop(sigc)
	if fsrv != nil {
		fsrv.SetDraining(true)
	}
	fmt.Fprintln(os.Stderr, "signal: draining — closing shipper sessions, emitting fleet report")
	agg.Close()
	<-served

	report := f.Report()
	windows := f.WindowReports()
	switch format {
	case "json":
		if err := core.WriteRunJSON(os.Stdout, windows, report); err != nil {
			return err
		}
	default:
		if len(windows) > 0 {
			fmt.Print(core.RenderWindowSummary(windows) + "\n")
		}
		fmt.Print(core.RenderText(report))
	}
	if st := f.Status(); !st.FinalReady {
		fmt.Fprintf(os.Stderr, "fleet incomplete: missing sites %v, %d windows lost — the report above carries the degradation census\n",
			st.MissingSites, st.LostWindows)
	}
	return nil
}

// checkCensus verifies the report's SourceError census against what the
// injectors actually fired; the match line is stable for CI to grep.
func checkCensus(r *core.Report, injectors []*faults.Source) error {
	exp := faults.Expected{ByKind: make(map[string]int64)}
	for _, fs := range injectors {
		e := fs.Expected()
		exp.Errors += e.Errors
		exp.LostBytes += e.LostBytes
		for k, n := range e.ByKind {
			exp.ByKind[k] += n
		}
	}
	got := r.SourceErrors
	ok := got.Errors == exp.Errors && got.LostBytes == exp.LostBytes
	if ok {
		for k, n := range exp.ByKind {
			if got.ByKind[k] != n {
				ok = false
				break
			}
		}
		for k := range got.ByKind {
			if _, want := exp.ByKind[k]; !want {
				ok = false
				break
			}
		}
	}
	if !ok {
		return fmt.Errorf("fault census: report (%d errors, %d bytes lost) does not match injected manifest (%d errors, %d bytes lost)",
			got.Errors, got.LostBytes, exp.Errors, exp.LostBytes)
	}
	fmt.Fprintf(os.Stderr, "fault census: report matches injected manifest (%d errors, %d bytes lost)\n",
		exp.Errors, exp.LostBytes)
	return nil
}
