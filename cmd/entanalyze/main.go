// Command entanalyze runs the paper's analysis pipeline over existing
// libpcap traces (for example, files produced by entgen, or any Ethernet
// capture) and prints the reproduced tables. Traces are streamed — packets
// are decoded in batches and sharded across workers, so multi-GB captures
// are analyzed without materializing them in memory.
//
// With -window, the analysis additionally cuts per-window reports at
// fixed boundaries in packet time; with -serve, a long-running HTTP
// server exposes the latest window, any window by index, and a health
// endpoint while analysis streams (and the final report afterwards).
//
// With -gen, no trace files are read at all: frames are synthesized on
// the fly from a gen.Schedule and streamed straight into the pipeline —
// the in-memory load harness. -duration tiles the schedule for soak
// runs; memory stays bounded however long it runs, and the report is
// byte-identical to writing the same schedule to a pcap and replaying
// it.
//
// Usage:
//
//	entanalyze [-payload] [-workers N] [-replay-workers N] [-monitored 128.3.5.0/24]
//	           [-window 60s] [-format text|json] [-serve :8080]
//	           trace1.pcap [trace2.pcap ...]
//	entanalyze -gen default [-gen-dataset D3] [-duration 10m] [-window 60s] [-serve :8080]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/stats"
)

func main() {
	payload := flag.Bool("payload", true, "enable application-payload analysis")
	monitored := flag.String("monitored", "128.3.0.0/16", "monitored prefix for fan-in/out")
	dataset := flag.String("name", "pcap", "label for the report")
	workers := flag.Int("workers", 0, "pipeline shard workers (0 = GOMAXPROCS); results are identical for any count")
	replayWorkers := flag.Int("replay-workers", 0, "application-replay workers (0 = GOMAXPROCS); results are identical for any count")
	window := flag.Duration("window", 0, "cut per-window reports at this interval in packet time (0 = whole-run report only)")
	format := flag.String("format", "text", "report output format: text or json")
	serve := flag.String("serve", "", "serve reports over HTTP at this address (e.g. :8080); window endpoints need -window")
	genSpec := flag.String("gen", "",
		`stream a synthesized schedule instead of reading trace files: comma-separated phases `+
			`kind:duration[:rate] with rate in sessions/minute (e.g. "steady:5m:120"), or "default" `+
			`for the built-in day-in-miniature; frames never touch disk`)
	genDataset := flag.String("gen-dataset", "D3", "dataset shape for -gen (D0..D4): snaplen, subnets, seed")
	duration := flag.Duration("duration", 0, "with -gen, tile the schedule to at least this length (soak mode; 0 = run it once)")
	flag.Parse()
	if (flag.NArg() == 0) == (*genSpec == "") {
		fmt.Fprintln(os.Stderr, "usage: entanalyze [flags] trace.pcap ...\n       entanalyze -gen <schedule|default> [flags]")
		os.Exit(2)
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	prefix, err := netip.ParsePrefix(*monitored)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Soak-mode setup: resolve the schedule and dataset shape up front so
	// flag errors surface before the server starts.
	var streamCfg gen.StreamConfig
	if *genSpec != "" {
		var cfg enterprise.Config
		found := false
		for _, c := range enterprise.AllDatasets() {
			if c.Name == *genDataset {
				cfg, found = c, true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown -gen-dataset %q\n", *genDataset)
			os.Exit(2)
		}
		sched := gen.DefaultSchedule()
		if *genSpec != "default" {
			if sched, err = gen.ParseSchedule(*genSpec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if *duration > 0 {
			sched = sched.Repeat(*duration)
		}
		subnet := cfg.Monitored[0]
		streamCfg = gen.StreamConfig{
			Network:  enterprise.NewNetwork(cfg),
			Subnet:   subnet,
			Schedule: sched,
			Snaplen:  cfg.Snaplen,
		}
		// The synthesized trace is a single monitored-subnet vantage;
		// default the fan-in/out prefix to it unless the user said
		// otherwise.
		if !setFlags["monitored"] {
			prefix = enterprise.SubnetPrefix(subnet)
		}
		if !setFlags["name"] {
			*dataset = fmt.Sprintf("%s-gen", cfg.Name)
		}
	} else if setFlags["duration"] || setFlags["gen-dataset"] {
		fmt.Fprintln(os.Stderr, "-duration and -gen-dataset require -gen")
		os.Exit(2)
	}
	opts := core.Options{
		Dataset:         *dataset,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: *payload,
		Workers:         *workers,
		ReplayWorkers:   *replayWorkers,
		Window:          *window,
	}
	if *window > 0 {
		// Narrate window completion as the watermark passes each
		// boundary, so a long streaming run shows progress.
		opts.OnWindow = func(wr *core.WindowReport) {
			fmt.Fprintf(os.Stderr, "window %d [%s, %s): %d conns, %s payload\n",
				wr.Index, wr.Start.UTC().Format("15:04:05"), wr.End.UTC().Format("15:04:05"),
				wr.Report.Table3.TotalConns, stats.Bytes(wr.Report.Table3.TotalBytes))
		}
	}
	a := core.NewAnalyzer(opts)

	var srv *core.ReportServer
	if *serve != "" {
		srv = core.NewReportServer(a)
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "serving reports on http://%s (/healthz, /report/latest, /report/window/<n>, /report/final)\n",
			ln.Addr())
		go func() {
			server := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
			if err := server.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	if *genSpec != "" {
		src := gen.NewStreamSource(streamCfg)
		start := time.Now()
		if err := a.AddTraceSource(*dataset, prefix, src); err != nil {
			fmt.Fprintf(os.Stderr, "gen stream: %v\n", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		st := src.Stats()
		fmt.Fprintf(os.Stderr, "gen stream: %d packets over %s of schedule in %.1fs wall (%.0f pkts/s), peak %d frames buffered, %d in flight\n",
			st.Frames, streamCfg.Schedule.Duration(), wall.Seconds(),
			float64(st.Frames)/wall.Seconds(), st.PeakBuffered, st.PeakInFlight)
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		before := a.PacketsSeen()
		if err := a.AddTraceReader(path, prefix, bufio.NewReaderSize(f, 1<<20)); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "%s: %d packets\n", path, a.PacketsSeen()-before)
	}

	report := a.Report()
	windows := a.WindowReports()
	switch *format {
	case "json":
		if err := core.WriteRunJSON(os.Stdout, windows, report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		if len(windows) > 0 {
			fmt.Print(core.RenderWindowSummary(windows) + "\n")
		}
		fmt.Print(core.RenderText(report))
	}
	if srv != nil {
		if err := srv.SetFinal(report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "analysis complete; still serving (Ctrl-C to exit)")
		select {}
	}
}
