// Command entanalyze runs the paper's analysis pipeline over existing
// libpcap traces (for example, files produced by entgen, or any Ethernet
// capture) and prints the reproduced tables. Traces are streamed — packets
// are decoded in batches and sharded across workers, so multi-GB captures
// are analyzed without materializing them in memory.
//
// Usage:
//
//	entanalyze [-payload] [-workers N] [-replay-workers N] [-monitored 128.3.5.0/24] trace1.pcap [trace2.pcap ...]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/netip"
	"os"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
)

func main() {
	payload := flag.Bool("payload", true, "enable application-payload analysis")
	monitored := flag.String("monitored", "128.3.0.0/16", "monitored prefix for fan-in/out")
	dataset := flag.String("name", "pcap", "label for the report")
	workers := flag.Int("workers", 0, "pipeline shard workers (0 = GOMAXPROCS); results are identical for any count")
	replayWorkers := flag.Int("replay-workers", 0, "application-replay workers (0 = GOMAXPROCS); results are identical for any count")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: entanalyze [flags] trace.pcap ...")
		os.Exit(2)
	}
	prefix, err := netip.ParsePrefix(*monitored)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	a := core.NewAnalyzer(core.Options{
		Dataset:         *dataset,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: *payload,
		Workers:         *workers,
		ReplayWorkers:   *replayWorkers,
	})
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		before := a.PacketsSeen()
		if err := a.AddTraceReader(path, prefix, bufio.NewReaderSize(f, 1<<20)); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "%s: %d packets\n", path, a.PacketsSeen()-before)
	}
	fmt.Print(core.RenderText(a.Report()))
}
