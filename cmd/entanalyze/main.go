// Command entanalyze runs the paper's analysis pipeline over existing
// libpcap traces (for example, files produced by entgen, or any Ethernet
// capture) and prints the reproduced tables. Traces are streamed — packets
// are decoded in batches and sharded across workers, so multi-GB captures
// are analyzed without materializing them in memory.
//
// With -window, the analysis additionally cuts per-window reports at
// fixed boundaries in packet time; with -serve, a long-running HTTP
// server exposes the latest window, any window by index, and a health
// endpoint while analysis streams (and the final report afterwards).
//
// With -gen, no trace files are read at all: frames are synthesized on
// the fly from a gen.Schedule and streamed straight into the pipeline —
// the in-memory load harness. -duration tiles the schedule for soak
// runs; memory stays bounded however long it runs, and the report is
// byte-identical to writing the same schedule to a pcap and replaying
// it.
//
// Resilience controls: -on-error selects the source read-error policy
// (fail-fast, or skip poisoned records and fold a SourceError census
// into the report), -inject drives a deterministic fault schedule
// against any source for chaos testing, and -idle-evict/-max-conns
// bound the connection table for indefinite runs. SIGINT/SIGTERM drain
// gracefully: intake stops, routed packets flush, the final report is
// emitted, and the process exits 0.
//
// Usage:
//
//	entanalyze [-payload] [-workers N] [-replay-workers N] [-monitored 128.3.5.0/24]
//	           [-window 60s] [-format text|json] [-serve :8080]
//	           [-on-error fail|skip] [-inject spec] [-idle-evict 5m] [-max-conns N]
//	           trace1.pcap [trace2.pcap ...]
//	entanalyze -gen default [-gen-dataset D3] [-duration 10m] [-window 60s] [-serve :8080]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/faults"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
	"enttrace/internal/pipeline"
	"enttrace/internal/stats"
)

// usageError marks a bad invocation; main exits 2 for it (like flag
// parse failures) and 1 for runtime errors.
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		var ue *usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	payload := flag.Bool("payload", true, "enable application-payload analysis")
	monitored := flag.String("monitored", "128.3.0.0/16", "monitored prefix for fan-in/out")
	dataset := flag.String("name", "pcap", "label for the report")
	workers := flag.Int("workers", 0, "pipeline shard workers (0 = GOMAXPROCS); results are identical for any count")
	replayWorkers := flag.Int("replay-workers", 0, "application-replay workers (0 = GOMAXPROCS); results are identical for any count")
	window := flag.Duration("window", 0, "cut per-window reports at this interval in packet time (0 = whole-run report only)")
	format := flag.String("format", "text", "report output format: text or json")
	serve := flag.String("serve", "", "serve reports over HTTP at this address (e.g. :8080); window endpoints need -window")
	genSpec := flag.String("gen", "",
		`stream a synthesized schedule instead of reading trace files: comma-separated phases `+
			`kind:duration[:rate] with rate in sessions/minute (e.g. "steady:5m:120"), or "default" `+
			`for the built-in day-in-miniature; frames never touch disk`)
	genDataset := flag.String("gen-dataset", "D3", "dataset shape for -gen (D0..D4): snaplen, subnets, seed")
	duration := flag.Duration("duration", 0, "with -gen, tile the schedule to at least this length (soak mode; 0 = run it once)")
	onError := flag.String("on-error", "fail",
		`source read-error policy: "fail" aborts on the first error (default); "skip" degrades `+
			`and continues — poisoned records are dropped and the report carries a SourceError census`)
	inject := flag.String("inject", "",
		`deterministic fault injection against every source: "kind@index[:arg],..." with kinds `+
			`read@N, short@N:cut, stall@N:dur, torn@N, eof@N — or "rand:seed:count:span"; pair with `+
			`-on-error skip to exercise degraded runs (the census is checked against the manifest)`)
	idleEvict := flag.Duration("idle-evict", 0,
		"evict connections idle past this horizon, bounding memory on indefinite runs "+
			"(0 = protocol-default timeouts only); evictions are banked as the report's AgedOut disposition")
	maxConns := flag.Int("max-conns", 0,
		"hard bound on live connections across all shards (0 = unbounded); a lossy backstop — "+
			"evictions are surfaced in the report when it fires")
	flag.Parse()
	if (flag.NArg() == 0) == (*genSpec == "") {
		return usagef("usage: entanalyze [flags] trace.pcap ...\n       entanalyze -gen <schedule|default> [flags]")
	}
	if *format != "text" && *format != "json" {
		return usagef("unknown -format %q (want text or json)", *format)
	}
	var policy pipeline.ErrorPolicy
	switch *onError {
	case "fail":
		policy = pipeline.FailFast
	case "skip":
		policy = pipeline.Degrade
	default:
		return usagef("unknown -on-error %q (want fail or skip)", *onError)
	}
	var injectSched faults.Schedule
	if *inject != "" {
		var err error
		if injectSched, err = faults.ParseSpec(*inject); err != nil {
			return &usageError{msg: err.Error()}
		}
	}
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	prefix, err := netip.ParsePrefix(*monitored)
	if err != nil {
		return &usageError{msg: err.Error()}
	}

	// Soak-mode setup: resolve the schedule and dataset shape up front so
	// flag errors surface before the server starts.
	var streamCfg gen.StreamConfig
	if *genSpec != "" {
		var cfg enterprise.Config
		found := false
		for _, c := range enterprise.AllDatasets() {
			if c.Name == *genDataset {
				cfg, found = c, true
			}
		}
		if !found {
			return usagef("unknown -gen-dataset %q", *genDataset)
		}
		sched := gen.DefaultSchedule()
		if *genSpec != "default" {
			if sched, err = gen.ParseSchedule(*genSpec); err != nil {
				return &usageError{msg: err.Error()}
			}
		}
		if *duration > 0 {
			sched = sched.Repeat(*duration)
		}
		subnet := cfg.Monitored[0]
		streamCfg = gen.StreamConfig{
			Network:  enterprise.NewNetwork(cfg),
			Subnet:   subnet,
			Schedule: sched,
			Snaplen:  cfg.Snaplen,
		}
		// The synthesized trace is a single monitored-subnet vantage;
		// default the fan-in/out prefix to it unless the user said
		// otherwise.
		if !setFlags["monitored"] {
			prefix = enterprise.SubnetPrefix(subnet)
		}
		if !setFlags["name"] {
			*dataset = fmt.Sprintf("%s-gen", cfg.Name)
		}
	} else if setFlags["duration"] || setFlags["gen-dataset"] {
		return usagef("-duration and -gen-dataset require -gen")
	}
	opts := core.Options{
		Dataset:         *dataset,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: *payload,
		Workers:         *workers,
		ReplayWorkers:   *replayWorkers,
		Window:          *window,
		OnError:         policy,
		IdleEvict:       *idleEvict,
		MaxConns:        *maxConns,
	}
	if *window > 0 {
		// Narrate window completion as the watermark passes each
		// boundary, so a long streaming run shows progress.
		opts.OnWindow = func(wr *core.WindowReport) {
			fmt.Fprintf(os.Stderr, "window %d [%s, %s): %d conns, %s payload\n",
				wr.Index, wr.Start.UTC().Format("15:04:05"), wr.End.UTC().Format("15:04:05"),
				wr.Report.Table3.TotalConns, stats.Bytes(wr.Report.Table3.TotalBytes))
		}
	}
	a := core.NewAnalyzer(opts)

	// Graceful drain: the first SIGINT/SIGTERM stops intake at the next
	// packet boundary; routed packets flush, the final report (and, with
	// -serve, /report/final) is emitted, and run returns nil — exit 0. A
	// second signal gets default handling (immediate termination).
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sigDone := make(chan struct{})
	go func() {
		<-sigc
		signal.Stop(sigc)
		fmt.Fprintln(os.Stderr, "signal: draining — stopping intake, flushing windows, emitting final report")
		a.Stop()
		close(sigDone)
	}()

	// wrapSource interposes the fault injector (when -inject is set) and
	// remembers each injector so the census self-check can aggregate the
	// manifests afterwards.
	var injectors []*faults.Source
	wrapSource := func(src pcap.PacketSource) pcap.PacketSource {
		if *inject == "" {
			return src
		}
		fs := faults.Wrap(src, injectSched)
		injectors = append(injectors, fs)
		return fs
	}

	var srv *core.ReportServer
	if *serve != "" {
		srv = core.NewReportServer(a)
		ln, err := net.Listen("tcp", *serve)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serving reports on http://%s (/healthz, /report/latest, /report/window/<n>, /report/final)\n",
			ln.Addr())
		go func() {
			server := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
			if err := server.Serve(ln); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}()
	}

	if *genSpec != "" {
		src := gen.NewStreamSource(streamCfg)
		start := time.Now()
		if err := a.AddTraceSource(*dataset, prefix, wrapSource(src)); err != nil {
			return fmt.Errorf("gen stream: %w", err)
		}
		wall := time.Since(start)
		st := src.Stats()
		fmt.Fprintf(os.Stderr, "gen stream: %d packets over %s of schedule in %.1fs wall (%.0f pkts/s), peak %d frames buffered, %d in flight\n",
			st.Frames, streamCfg.Schedule.Duration(), wall.Seconds(),
			float64(st.Frames)/wall.Seconds(), st.PeakBuffered, st.PeakInFlight)
	}
	var pool *pcap.Pool
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		before := a.PacketsSeen()
		if *inject == "" {
			err = a.AddTraceReader(path, prefix, bufio.NewReaderSize(f, 1<<20))
		} else {
			// Injection needs to sit between the pcap reader and the
			// pipeline, so build the pooled source here instead of
			// letting the analyzer do it.
			var rd *pcap.Reader
			if rd, err = pcap.NewReader(bufio.NewReaderSize(f, 1<<20)); err == nil {
				if pool == nil {
					pool = pcap.NewPool()
				}
				err = a.AddTraceSource(path, prefix, wrapSource(pcap.NewPooledReader(rd, pool)))
			}
		}
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(os.Stderr, "%s: %d packets\n", path, a.PacketsSeen()-before)
	}

	report := a.Report()
	windows := a.WindowReports()
	switch *format {
	case "json":
		if err := core.WriteRunJSON(os.Stdout, windows, report); err != nil {
			return err
		}
	default:
		if len(windows) > 0 {
			fmt.Print(core.RenderWindowSummary(windows) + "\n")
		}
		fmt.Print(core.RenderText(report))
	}
	if len(injectors) > 0 && policy == pipeline.Degrade && !a.Stopping() {
		if err := checkCensus(report, injectors); err != nil {
			return err
		}
	}
	if srv != nil {
		if err := srv.SetFinal(report); err != nil {
			return err
		}
		if !a.Stopping() {
			fmt.Fprintln(os.Stderr, "analysis complete; still serving (SIGINT/SIGTERM to exit)")
			<-sigDone
		}
	}
	return nil
}

// checkCensus verifies the report's SourceError census against what the
// injectors actually fired; the match line is stable for CI to grep.
func checkCensus(r *core.Report, injectors []*faults.Source) error {
	exp := faults.Expected{ByKind: make(map[string]int64)}
	for _, fs := range injectors {
		e := fs.Expected()
		exp.Errors += e.Errors
		exp.LostBytes += e.LostBytes
		for k, n := range e.ByKind {
			exp.ByKind[k] += n
		}
	}
	got := r.SourceErrors
	ok := got.Errors == exp.Errors && got.LostBytes == exp.LostBytes
	if ok {
		for k, n := range exp.ByKind {
			if got.ByKind[k] != n {
				ok = false
				break
			}
		}
		for k := range got.ByKind {
			if _, want := exp.ByKind[k]; !want {
				ok = false
				break
			}
		}
	}
	if !ok {
		return fmt.Errorf("fault census: report (%d errors, %d bytes lost) does not match injected manifest (%d errors, %d bytes lost)",
			got.Errors, got.LostBytes, exp.Errors, exp.LostBytes)
	}
	fmt.Fprintf(os.Stderr, "fault census: report matches injected manifest (%d errors, %d bytes lost)\n",
		exp.Errors, exp.LostBytes)
	return nil
}
